package table

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rodentstore/internal/algebra"
	"rodentstore/internal/catalog"
	"rodentstore/internal/cost"
	"rodentstore/internal/segment"
	"rodentstore/internal/transforms"
	"rodentstore/internal/txn"
	"rodentstore/internal/value"
	"rodentstore/internal/vec"
)

// ScanOptions are the optional projection, range predicate and sort order
// of the scan method (paper §4.1).
type ScanOptions struct {
	// Fields projects the output (nil = all stored fields).
	Fields []string
	// Pred filters rows; grid layouts and zone maps prune blocks with it.
	Pred algebra.Predicate
	// Order requests a sort order. If it matches the stored order the scan
	// streams; otherwise the result is materialized and re-sorted (the
	// paper's §4.1: "RodentStore may have to re-sort the data").
	Order []algebra.OrderKey
	// NoZonePrune disables block zone-map pruning (grid cell pruning still
	// applies). Benchmarks use it to reproduce baselines that lack zone
	// maps, such as the paper's raw heap scans.
	NoZonePrune bool
	// Parallel fans block fetch/decode/filter out over a bounded worker
	// pool. Stored order is preserved (blocks are merged back in order), so
	// results are identical to a serial scan. The paper-figure experiments
	// keep Parallel off: the serial path's page/seek accounting is the
	// measurement substrate and stays byte-identical.
	Parallel bool
	// Workers bounds the parallel worker pool (0 = GOMAXPROCS). Ignored
	// unless Parallel is set.
	Workers int
	// NoVectorize forces the boxed row-at-a-time block path instead of the
	// vectorized (typed column batch) executor. Results are identical; the
	// flag exists for differential tests and as the Ext-11 benchmark
	// baseline.
	NoVectorize bool
	// Coalesce turns on coalesced run reads: physically adjacent blocks are
	// fetched with one large positional read per segment instead of one
	// range read per block (see prefetch.go). Results are identical; the
	// paper-figure experiments keep it off so the serial path's page/seek
	// accounting stays byte-identical.
	Coalesce bool
	// Prefetch implies Coalesce and additionally reads the next run
	// asynchronously (double-buffered) while the current one decodes, hiding
	// read latency behind decode time.
	Prefetch bool
	// Quarantine degrades gracefully on damaged data: blocks that cannot be
	// read (after transient errors are retried with capped backoff) are
	// skipped instead of aborting the scan, and the affected extents are
	// listed in Cursor.Report. Off by default — an unreadable block fails
	// the scan with a typed corruption error.
	Quarantine bool
	// Aggregate turns the scan into an aggregation (see AggSpec): the
	// cursor yields one row per group instead of the matching rows, and no
	// input row is ever materialized — blocks fold straight into typed
	// accumulators. Mutually exclusive with Fields and Order (groups are
	// always sorted by key). Results are bit-identical across
	// serial/parallel and vectorized/NoVectorize executors.
	Aggregate *AggSpec
}

// reorganizeIfNeeded applies a pending lazy reorganization under the
// exclusive table lock. Readers that find NeedsReorg set under their shared
// lock release it and call this instead of reorganizing in place: two
// shared holders reorganizing concurrently would each render and free the
// same old extents (a double free). The re-check under the exclusive lock
// makes the losers of that race no-ops.
func (e *Engine) reorganizeIfNeeded(name string) error {
	return e.withLock(name, txn.Exclusive, func() error {
		tab, err := e.cat.Get(name)
		if err != nil {
			return err
		}
		if !tab.NeedsReorg {
			return nil // another reader already reorganized
		}
		return e.reorganizeLocked(tab)
	})
}

// Scan opens a cursor over the table (paper §4.1 scan). Lazy-reorganization
// marks are honored before the scan runs.
func (e *Engine) Scan(name string, opts ScanOptions) (*Cursor, error) {
	var cur *Cursor
	var needsReorg bool
	err := e.withLock(name, txn.Shared, func() error {
		tab, err := e.cat.Get(name)
		if err != nil {
			return err
		}
		if tab.NeedsReorg {
			needsReorg = true // reorganize needs the exclusive lock; retry below
			return nil
		}
		so := storedScanOpts{
			noZone: opts.NoZonePrune, noVec: opts.NoVectorize, quarantine: opts.Quarantine,
			io: scanIO{coalesce: opts.Coalesce || opts.Prefetch, prefetch: opts.Prefetch},
		}
		if opts.Aggregate != nil {
			if len(opts.Fields) > 0 {
				return fmt.Errorf("table: Aggregate and Fields are mutually exclusive (group keys and aggregates define the output)")
			}
			if len(opts.Order) > 0 {
				return fmt.Errorf("table: Aggregate and Order are mutually exclusive (groups are sorted by key)")
			}
			fields := opts.Aggregate.ScanFields()
			if len(fields) == 0 {
				// A bare count(*) reads no input columns, but the scan still
				// needs a non-nil projection (nil means "all stored fields")
				// and a part with a readable segment for block metadata.
				// Anchor on a predicate field if there is one — it is decoded
				// anyway — else the first stored column, whose pages are only
				// read if something actually decodes them.
				if pf := opts.Pred.Fields(); len(pf) > 0 {
					fields = pf[:1]
				} else {
					stored, err := storedSchema(tab)
					if err != nil {
						return err
					}
					if stored.Arity() > 0 {
						fields = stored.Names()[:1]
					}
				}
			}
			cur, err = e.scanStoredOpts(tab, fields, opts.Pred, so)
			if err != nil {
				return err
			}
			cur.agg, err = buildAggExec(opts.Aggregate, cur.decoded, opts.Pred, opts.NoVectorize)
			if err != nil {
				return err
			}
			if opts.Parallel {
				cur.startParallel(opts.Workers)
			}
			cur.setupScanIO()
			if err := cur.runAggregate(); err != nil {
				cur.Close()
				return err
			}
			return nil
		}
		cur, err = e.scanStoredOpts(tab, opts.Fields, opts.Pred, so)
		if err != nil {
			return err
		}
		if opts.Parallel {
			cur.startParallel(opts.Workers)
		}
		cur.setupScanIO()
		if len(opts.Order) > 0 && !e.orderMatchesStored(tab, opts.Order) {
			return cur.materializeSort(opts.Order)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if needsReorg {
		if err := e.reorganizeIfNeeded(name); err != nil {
			return nil, err
		}
		return e.Scan(name, opts) // NeedsReorg is now clear; at most one retry
	}
	return cur, nil
}

// orderMatchesStored reports whether the requested order is a prefix of a
// stored order and no unordered tail batches exist. Runs are each organized
// under the layout's sort, but two sorted runs concatenated are not globally
// sorted — so more than one organized part also re-sorts.
func (e *Engine) orderMatchesStored(tab *catalog.Table, order []algebra.OrderKey) bool {
	if len(tab.Tails) > 0 {
		return false
	}
	organized := len(tab.Runs)
	if len(tab.Segments) > 0 {
		organized++
	}
	if organized > 1 {
		return false
	}
	spec, err := e.compile(tab.LayoutExpr)
	if err != nil {
		return false
	}
	for _, stored := range spec.StoredOrders() {
		if len(order) > len(stored) {
			continue
		}
		match := true
		for i, k := range order {
			if stored[i] != k {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// GetElement positions a cursor at the element at index (paper §4.1
// getElement): a single index addresses the row at that position in stored
// order; for gridded tables a multidimensional index addresses a grid cell
// (the cursor starts at the cell's first row). Subsequent Next calls
// continue in stored order, which is what the API's next() specifies.
func (e *Engine) GetElement(name string, fields []string, index []int64) (*Cursor, error) {
	var cur *Cursor
	var needsReorg bool
	err := e.withLock(name, txn.Shared, func() error {
		tab, err := e.cat.Get(name)
		if err != nil {
			return err
		}
		if tab.NeedsReorg {
			needsReorg = true // reorganize needs the exclusive lock; retry below
			return nil
		}
		switch {
		case len(index) == 1:
			cur, err = e.scanStored(tab, fields, algebra.True, false)
			if err != nil {
				return err
			}
			return cur.seekRow(index[0])
		case len(index) == len(tab.GridBounds) && len(tab.GridBounds) > 1:
			bounds := boundsOf(tab)
			var cell uint64
			for d, b := range bounds {
				if index[d] < 0 || index[d] >= int64(b.Cells) {
					return fmt.Errorf("table: cell index %d out of range [0,%d) in dimension %q", index[d], b.Cells, b.Field)
				}
				cell = cell*uint64(b.Cells) + uint64(index[d])
			}
			cur, err = e.scanStored(tab, fields, algebra.True, false)
			if err != nil {
				return err
			}
			return cur.seekCell(cell)
		default:
			return fmt.Errorf("table: index arity %d (table has %d grid dimensions)", len(index), len(tab.GridBounds))
		}
	})
	if err != nil {
		return nil, err
	}
	if needsReorg {
		if err := e.reorganizeIfNeeded(name); err != nil {
			return nil, err
		}
		return e.GetElement(name, fields, index)
	}
	return cur, nil
}

// OrderList returns the sort orders the current organization serves
// efficiently (paper §4.1 order_list). Gridded layouts additionally report
// their cell curve as a pseudo-order string via GridOrder.
func (e *Engine) OrderList(name string) ([][]algebra.OrderKey, error) {
	tab, err := e.cat.Get(name)
	if err != nil {
		return nil, err
	}
	spec, err := e.compile(tab.LayoutExpr)
	if err != nil {
		return nil, err
	}
	return spec.StoredOrders(), nil
}

// GridOrder describes the cell ordering of a gridded table ("" if
// ungridded), e.g. "zorder(lat,lon)".
func (e *Engine) GridOrder(name string) (string, error) {
	tab, err := e.cat.Get(name)
	if err != nil {
		return "", err
	}
	if len(tab.GridBounds) == 0 {
		return "", nil
	}
	spec, err := e.compile(tab.LayoutExpr)
	if err != nil || spec.Grid == nil {
		return "", err
	}
	fields := ""
	for i, d := range spec.Grid.Dims {
		if i > 0 {
			fields += ","
		}
		fields += d.Field
	}
	return string(spec.Grid.Curve) + "(" + fields + ")", nil
}

// RowCount returns the table's row count.
func (e *Engine) RowCount(name string) (int64, error) {
	tab, err := e.cat.Get(name)
	if err != nil {
		return 0, err
	}
	return tab.RowCount, nil
}

// blockRef addresses one block within one part (main or tail batch).
type blockRef struct {
	part  int
	block int
}

// part is one renderable unit: the main segments or one tail batch.
type part struct {
	entries []catalog.SegmentEntry
	readers []*segment.Reader // parallel to entries, only for needed segments (nil otherwise)
	// outCols maps each decoded field to (segment index, column index).
	fieldSeg map[string][2]int
	rows     int64
}

// batchPool recycles column batches across blocks, cursors and parallel
// scan workers. sync.Pool-backed, so it is safe for concurrent use and
// sheds memory under GC pressure.
var batchPool = vec.NewPool()

// Cursor iterates rows of a scan (paper §4.1 next). Cursors are not safe
// for concurrent use (the parallel scanner parallelizes *inside* one
// cursor; concurrent queries each open their own).
//
// Two block executors live behind the cursor. The default vectorized path
// decodes blocks into typed column batches (internal/vec), filters with a
// compiled predicate over a selection vector, and late-materializes only
// the projected columns of surviving rows; NextBatch exposes those batches
// directly, and Next boxes one row at a time out of the current batch. The
// boxed path (ScanOptions.NoVectorize) is the original row-at-a-time loop,
// kept as the differential-test oracle and benchmark baseline. Both paths
// issue identical page reads in identical order, so the paper-figure
// page/seek accounting does not depend on the executor.
type Cursor struct {
	schema   *value.Schema // output schema (projection applied)
	decoded  *value.Schema // decoded schema (projection ∪ predicate fields)
	outIdx   []int         // positions of output fields within decoded rows
	identity bool          // outIdx is the identity over decoded
	pred     algebra.Predicate
	// filter is the compiled vectorized predicate; nil selects the boxed
	// row-at-a-time path.
	filter    *algebra.CompiledPred
	parts     []*part
	blocks    []blockRef
	cur       int
	buf       []value.Row
	bufPos    int
	batch     *vec.Batch // current block's batch (vectorized path)
	batchPos  int
	vs        vecScratch // reusable vectorized-decode scratch (serial path)
	dec       rowDecoder // reusable boxed-decode scratch (serial path)
	exhausted bool
	// par, when non-nil, replaces the serial block loop with the ordered
	// parallel pipeline.
	par *parallelScan
	// sorted, when non-nil, replaces streaming (materialized order-by, and
	// the result rows of an aggregation).
	sorted    []value.Row
	sortedPos int
	// agg, when non-nil, turns the scan into an aggregation: blocks fold
	// into typed accumulators (runAggregate) instead of materializing.
	agg *aggExec
	// quar, when non-nil, enables corruption quarantine: unreadable blocks
	// are recorded here and skipped instead of failing the scan.
	quar *quarState
	// io are the scan I/O pipeline knobs; rl, when non-nil, drives the serial
	// path's coalesced/prefetched run reads (parallel workers own their own
	// loaders). See prefetch.go.
	io scanIO
	rl *runLoader
}

// setupScanIO arms the serial scan I/O pipeline after the executor choice is
// settled: the parallel pipeline gives each worker its own loader instead,
// and a scan with no blocks has nothing to coalesce.
func (c *Cursor) setupScanIO() {
	if !c.io.coalesce || c.par != nil || len(c.blocks) == 0 || c.rl != nil {
		return
	}
	rl := newRunLoader(c.parts, c.io.prefetch)
	rl.setSeq(c.blocks)
	c.rl = rl
	if rl.pf != nil {
		// Like the parallel pipeline: an abandoned cursor must not leave the
		// prefetch goroutine parked forever. Close still joins it first.
		runtime.AddCleanup(c, func(pf *prefetcher) { pf.close() }, rl.pf)
	}
}

// Report returns what a quarantined scan has skipped so far. Complete only
// after the cursor is exhausted; always empty without ScanOptions.Quarantine.
func (c *Cursor) Report() ScanReport { return c.quar.report() }

// Schema returns the cursor's output schema.
func (c *Cursor) Schema() *value.Schema { return c.schema }

// Close releases cursor resources. Parallel workers are stopped and joined
// before Close returns, so no goroutine of this cursor still touches the
// pool or pager afterwards.
func (c *Cursor) Close() {
	if c.par != nil {
		c.par.shutdown()
	}
	if c.rl != nil {
		c.rl.close()
		c.rl = nil
	}
	c.exhausted = true
	c.buf = nil
	c.sorted = nil
	batchPool.Put(c.batch)
	c.batch = nil
}

// Next returns the next row, reporting ok=false at the end (paper §4.1).
func (c *Cursor) Next() (value.Row, bool, error) {
	if c.sorted != nil {
		if c.sortedPos >= len(c.sorted) {
			return nil, false, nil
		}
		r := c.sorted[c.sortedPos]
		c.sortedPos++
		return r, true, nil
	}
	for {
		if c.exhausted {
			return nil, false, nil
		}
		if c.bufPos < len(c.buf) {
			r := c.buf[c.bufPos]
			c.bufPos++
			return r, true, nil
		}
		if c.batch != nil && c.batchPos < c.batch.Len() {
			r := c.batch.Row(c.batchPos)
			c.batchPos++
			return r, true, nil
		}
		if err := c.advance(); err != nil {
			return nil, false, err
		}
	}
}

// NextBatch returns the next non-empty batch of rows as typed column
// vectors, reporting ok=false at the end. It is the vectorized counterpart
// of Next: iterating batches skips the per-row boxing entirely. The
// returned batch (and any slices taken from it) is valid only until the
// next Next/NextBatch/Close call — copy out what must survive. Mixing Next
// and NextBatch is allowed; NextBatch first drains whatever Next has not
// consumed of the current block.
func (c *Cursor) NextBatch() (*vec.Batch, bool, error) {
	if c.sorted != nil {
		if c.sortedPos >= len(c.sorted) {
			return nil, false, nil
		}
		b, err := vec.FromRows(c.schema, c.sorted[c.sortedPos:])
		c.sortedPos = len(c.sorted)
		if err != nil {
			return nil, false, err
		}
		return b, true, nil
	}
	for {
		if c.exhausted {
			return nil, false, nil
		}
		if c.bufPos < len(c.buf) {
			b, err := vec.FromRows(c.schema, c.buf[c.bufPos:])
			c.bufPos = len(c.buf)
			if err != nil {
				return nil, false, err
			}
			return b, true, nil
		}
		if c.batch != nil && c.batchPos < c.batch.Len() {
			if c.batchPos == 0 {
				b := c.batch
				c.batchPos = b.Len()
				return b, true, nil
			}
			// Next consumed a prefix; hand out the boxed remainder.
			rem := make([]value.Row, 0, c.batch.Len()-c.batchPos)
			for i := c.batchPos; i < c.batch.Len(); i++ {
				rem = append(rem, c.batch.Row(i))
			}
			c.batchPos = c.batch.Len()
			b, err := vec.FromRows(c.batch.Schema(), rem)
			if err != nil {
				return nil, false, err
			}
			return b, true, nil
		}
		if err := c.advance(); err != nil {
			return nil, false, err
		}
	}
}

// advance fetches the next block's rows into c.buf or c.batch, marking the
// cursor exhausted at the end of the block list (or parallel stream).
func (c *Cursor) advance() error {
	if c.par != nil {
		res, ok, err := c.par.next()
		if err != nil {
			c.exhausted = true
			return err
		}
		if !ok {
			c.exhausted = true
			return nil
		}
		if res.skipped {
			return nil // quarantined block: Next's loop re-advances
		}
		if res.batch != nil {
			batchPool.Put(c.batch)
			c.batch, c.batchPos = res.batch, 0
		} else {
			c.buf, c.bufPos = res.rows, 0
		}
		return nil
	}
	if c.cur >= len(c.blocks) {
		c.exhausted = true
		return nil
	}
	ref := c.blocks[c.cur]
	if err := c.loadBlock(ref); err != nil {
		if c.quar == nil {
			return err
		}
		// Quarantine: retry transient errors, then skip the block. The
		// cursor's buf/batch are already exhausted (advance only runs then),
		// so leaving them untouched makes Next's loop re-advance past it.
		if _, qerr := c.quar.handle(c.parts[ref.part], ref, err, func() error {
			return c.loadBlock(ref)
		}); qerr != nil {
			return qerr
		}
	}
	c.cur++
	return nil
}

// loadBlock decodes one block, filters, and projects into c.batch
// (vectorized path) or c.buf (boxed path).
func (c *Cursor) loadBlock(ref blockRef) error {
	p := c.parts[ref.part]
	if err := c.rl.ensure(ref, p.readers); err != nil {
		return err
	}
	if c.filter != nil {
		batch, err := decodeBlockVec(p, p.readers, ref.block, c.decoded, c.schema, c.filter, c.outIdx, c.identity, &c.vs)
		if err != nil {
			return err
		}
		batchPool.Put(c.batch)
		c.batch, c.batchPos = batch, 0
		return nil
	}
	rows, err := c.dec.decodeBlockRows(p, p.readers, ref.block, c.decoded, c.pred, c.outIdx, c.identity)
	if err != nil {
		return err
	}
	c.buf, c.bufPos = rows, 0
	return nil
}

// blockRow returns one row of the just-loaded block by in-block offset. It
// abstracts over the batch/buf representations for the positional paths
// (seekRow, fetchPositions), which always run with the true predicate, so
// offset == stored position within the block.
func (c *Cursor) blockRow(off int) (value.Row, bool) {
	if c.batch != nil {
		if off >= c.batch.Len() {
			return nil, false
		}
		return c.batch.Row(off), true
	}
	if off >= len(c.buf) {
		return nil, false
	}
	return c.buf[off], true
}

// skipTo positions the in-block read offset (after loadBlock).
func (c *Cursor) skipTo(off int) {
	if c.batch != nil {
		c.batchPos = off
	} else {
		c.bufPos = off
	}
}

// blockRowCount returns the metadata row count of one block of a part —
// the authoritative count every decoded column must match.
func blockRowCount(p *part, block int) int {
	return p.entries[firstReadSeg(p)].Meta.Blocks[block].Rows
}

// rowDecoder is the boxed row-at-a-time block decoder. The struct holds
// per-goroutine scratch (the per-segment column slabs) so steady-state
// block decodes reuse buffers instead of reallocating them; the serial
// cursor owns one and each parallel worker owns its own.
type rowDecoder struct {
	colsBySeg [][][]value.Value
}

// decodeBlockRows decodes one block of a part through the given readers
// (which must belong to the calling goroutine), filters with pred, and
// projects to the output columns. It is the boxed core of the serial and
// parallel block paths. The row count comes from block metadata; a decoded
// column of any other length — including a shorter column from another
// segment of the part — is an error, never a silent truncation.
func (d *rowDecoder) decodeBlockRows(p *part, readers []*segment.Reader, block int, decoded *value.Schema, pred algebra.Predicate, outIdx []int, identity bool) ([]value.Row, error) {
	// Decode needed columns from each needed segment.
	if cap(d.colsBySeg) < len(p.entries) {
		d.colsBySeg = make([][][]value.Value, len(p.entries))
	}
	colsBySeg := d.colsBySeg[:len(p.entries)]
	nrows := blockRowCount(p, block)
	for si, r := range readers {
		colsBySeg[si] = nil
		if r == nil {
			continue
		}
		want := segColumns(p, si, decoded)
		cols, err := r.ReadBlock(block, want)
		if err != nil {
			return nil, err
		}
		colsBySeg[si] = cols
		for _, w := range want {
			if cols[w] != nil && len(cols[w]) != nrows {
				return nil, fmt.Errorf("table: block %d: segment %d column %d holds %d rows, block metadata says %d",
					block, si, w, len(cols[w]), nrows)
			}
		}
	}
	rows := make([]value.Row, 0, nrows)
	for i := 0; i < nrows; i++ {
		row := make(value.Row, decoded.Arity())
		for fi, f := range decoded.Fields {
			loc := p.fieldSeg[f.Name]
			row[fi] = colsBySeg[loc[0]][loc[1]][i]
		}
		if !pred.IsTrue() && !pred.Eval(decoded, row) {
			continue
		}
		if identity {
			// The decoded row already is the output row; no second
			// allocation-and-copy.
			rows = append(rows, row)
			continue
		}
		out := make(value.Row, len(outIdx))
		for oi, di := range outIdx {
			out[oi] = row[di]
		}
		rows = append(rows, out)
	}
	return rows, nil
}

// vecScratch is one goroutine's reusable vectorized-decode state: the
// selection buffer, the per-segment view pointers and the decoded-column
// marks. The serial cursor owns one and each parallel worker owns its own,
// so steady-state block decodes allocate nothing beyond pooled batches.
type vecScratch struct {
	sel   []int32
	views []*segment.BlockView
	done  []bool
}

// decodeBlockVec is the vectorized block decoder: one range read per
// segment (same I/O accounting as the boxed path), typed column decode
// with no per-cell boxing, selection-vector filtering, and late
// materialization — predicate columns decode first, and when no row
// survives the remaining columns are never decoded at all. When every row
// survives, projected columns decode straight into the output batch (and
// already-decoded predicate columns are swapped in), so the full-selection
// path copies nothing. The returned batch comes from batchPool.
func decodeBlockVec(p *part, readers []*segment.Reader, block int, decoded, outSchema *value.Schema, filter *algebra.CompiledPred, outIdx []int, identity bool, vs *vecScratch) (*vec.Batch, error) {
	nrows := blockRowCount(p, block)
	// Fetch each needed segment's block bytes (views share the readers'
	// reusable buffers; all decoding below happens before the next block).
	if cap(vs.views) < len(p.entries) {
		vs.views = make([]*segment.BlockView, len(p.entries))
	}
	views := vs.views[:len(p.entries)]
	for si, r := range readers {
		views[si] = nil
		if r == nil {
			continue
		}
		bv, err := r.View(block)
		if err != nil {
			return nil, err
		}
		if bv.Rows() != nrows {
			return nil, fmt.Errorf("table: block %d: segment %d holds %d rows, block metadata says %d",
				block, si, bv.Rows(), nrows)
		}
		views[si] = bv
	}
	decodeInto := func(di int, dst *vec.Vector) error {
		loc := p.fieldSeg[decoded.Fields[di].Name]
		return views[loc[0]].DecodeCol(loc[1], dst)
	}
	dec := batchPool.Get(decoded)
	if cap(vs.done) < decoded.Arity() {
		vs.done = make([]bool, decoded.Arity())
	}
	done := vs.done[:decoded.Arity()]
	for i := range done {
		done[i] = false
	}
	// Phase 1: predicate columns only, then filter.
	for _, di := range filter.Columns() {
		if err := decodeInto(di, &dec.Cols[di]); err != nil {
			batchPool.Put(dec)
			return nil, err
		}
		done[di] = true
	}
	// An empty predicate selects everything; only a real filter needs the
	// identity selection materialized (the full-selection paths below never
	// index sel).
	nsel := nrows
	if !filter.Empty() {
		vs.sel = vec.FillSel(vs.sel, nrows)
		vs.sel = filter.Filter(dec, vs.sel)
		nsel = len(vs.sel)
	}
	sel := vs.sel
	if nsel == 0 {
		batchPool.Put(dec)
		return batchPool.Get(outSchema), nil // empty batch: projected columns never decoded
	}
	full := nsel == nrows
	if identity && full {
		// Full selection, identity projection: decode the rest in place —
		// the decoded batch is the output batch.
		for _, di := range outIdx {
			if done[di] {
				continue
			}
			if err := decodeInto(di, &dec.Cols[di]); err != nil {
				batchPool.Put(dec)
				return nil, err
			}
		}
		if err := dec.SetLen(nrows); err != nil {
			batchPool.Put(dec)
			return nil, err
		}
		return dec, nil
	}
	// Phase 2: projected columns. Full selection decodes (or swaps) into
	// the output batch directly; a partial selection decodes into the
	// scratch batch and gathers only the selected rows.
	out := batchPool.Get(outSchema)
	fail := func(err error) (*vec.Batch, error) {
		batchPool.Put(dec)
		batchPool.Put(out)
		return nil, err
	}
	for oi, di := range outIdx {
		switch {
		case full && done[di]:
			// Already decoded for the filter; outIdx positions are distinct,
			// so stealing the vector is safe.
			out.Cols[oi], dec.Cols[di] = dec.Cols[di], out.Cols[oi]
		case full:
			if err := decodeInto(di, &out.Cols[oi]); err != nil {
				return fail(err)
			}
		default:
			if !done[di] {
				if err := decodeInto(di, &dec.Cols[di]); err != nil {
					return fail(err)
				}
				done[di] = true
			}
			out.Cols[oi].AppendSel(&dec.Cols[di], sel)
		}
	}
	batchPool.Put(dec)
	if err := out.SetLen(nsel); err != nil {
		batchPool.Put(out)
		return nil, err
	}
	return out, nil
}

// blockResult is one decoded block (or its error) flowing through the
// parallel pipeline: a batch on the vectorized path, boxed rows on the
// boxed path, a partial aggregate state on the aggregation path.
type blockResult struct {
	rows  []value.Row
	batch *vec.Batch
	agg   *aggState
	err   error
	// skipped marks a quarantined block: the worker recorded it in the
	// cursor's quarantine state and delivers an empty result so the ordered
	// merge keeps flowing instead of canceling the pipeline.
	skipped bool
}

// parallelScan runs the cursor's block list through a morsel-driven worker
// pool: non-pruned blocks are coalesced into morsels (contiguous
// row-count-targeted block ranges of one part) on a shared queue that
// workers claim dynamically — a worker that drew cheap (pruned-thin,
// well-compressed, cached) morsels simply claims more, so skewed layouts
// no longer leave workers idle the way a fixed per-block hand-off could
// when block costs diverge. Stored order is still preserved: each morsel
// fulfills a buffered promise (results[i]), and the consumer awaits
// promises in order. The ticket semaphore bounds how many morsels may be
// in flight or undelivered ahead of the consumer, so workers cannot run
// away decoding the whole table into memory.
type parallelScan struct {
	morsels [][]blockRef
	results []chan []blockResult // per-morsel promise, buffered(1)
	claim   atomic.Int64         // next unclaimed morsel index
	tickets chan struct{}        // run-ahead bound: send=acquire, receive=release
	done    chan struct{}
	stop    sync.Once
	wg      sync.WaitGroup
	// Consumer state: the current morsel's results and position.
	cur    int
	buf    []blockResult
	have   bool
	bufPos int
}

// cancel stops the workers without draining.
func (ps *parallelScan) cancel() {
	ps.stop.Do(func() { close(ps.done) })
}

// shutdown cancels and then joins every pipeline goroutine, so no worker
// still holds page leases or issues reads after it returns. It then
// recycles every batch the consumer never took — the rest of the current
// morsel and any delivered-but-unread morsel promises — so an error or an
// early Close hands each pooled batch to exactly one owner.
func (ps *parallelScan) shutdown() {
	ps.cancel()
	ps.wg.Wait()
	if ps.have {
		recycleResults(ps.buf[ps.bufPos:])
		ps.buf, ps.have = nil, false
	}
	// Workers have exited: each promise channel holds at most one
	// undelivered result slice, and nothing sends anymore.
	for _, ch := range ps.results {
		select {
		case res := <-ch:
			recycleResults(res)
		default:
		}
	}
}

// recycleResults hands the batches of undelivered block results back to the
// pool.
func recycleResults(res []blockResult) {
	for i := range res {
		if res[i].batch != nil {
			batchPool.Put(res[i].batch)
			res[i].batch = nil
		}
	}
}

// next returns the next block's result in stored order, awaiting morsel
// promises in queue order and stepping through each morsel's blocks.
func (ps *parallelScan) next() (blockResult, bool, error) {
	for {
		if ps.have {
			if ps.bufPos < len(ps.buf) {
				res := ps.buf[ps.bufPos]
				ps.bufPos++
				if res.err != nil {
					ps.cancel()
					return blockResult{}, false, res.err
				}
				return res, true, nil
			}
			ps.have = false
			ps.buf = nil
			<-ps.tickets // morsel consumed: release its run-ahead slot
			ps.cur++
		}
		if ps.cur >= len(ps.morsels) {
			ps.cancel()
			return blockResult{}, false, nil
		}
		ps.buf, ps.bufPos, ps.have = <-ps.results[ps.cur], 0, true
	}
}

// buildMorsels coalesces the ordered block list into morsels: runs of
// same-part blocks up to a row-count target sized so each worker sees
// several morsels (dynamic claiming needs slack to absorb skew) without
// making them so small that claim/promise overhead shows.
func buildMorsels(blocks []blockRef, parts []*part, workers int) [][]blockRef {
	const minMorselRows, maxMorselRows = 1 << 10, 1 << 16
	var total int64
	for _, ref := range blocks {
		total += int64(blockRowCount(parts[ref.part], ref.block))
	}
	target := total / int64(4*workers)
	if target < minMorselRows {
		target = minMorselRows
	}
	if target > maxMorselRows {
		target = maxMorselRows
	}
	var morsels [][]blockRef
	var cur []blockRef
	var rows int64
	for _, ref := range blocks {
		if len(cur) > 0 && (cur[len(cur)-1].part != ref.part || rows >= target) {
			morsels = append(morsels, cur)
			cur, rows = nil, 0
		}
		cur = append(cur, ref)
		rows += int64(blockRowCount(parts[ref.part], ref.block))
	}
	if len(cur) > 0 {
		morsels = append(morsels, cur)
	}
	return morsels
}

// startParallel switches the cursor to the parallel executor: workers
// claim morsels (block ranges) off a shared queue, fetch/decode/filter (or
// aggregate) them concurrently, and an ordered merge preserves stored
// order. Each worker clones the part readers, so no reader state is
// shared. Workers are capped at the morsel count — a small table or a
// heavily zone-pruned scan spawns only as many goroutines as there is work
// to claim, instead of idle workers contending on the merge.
func (c *Cursor) startParallel(workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(c.blocks) == 0 || c.par != nil {
		return
	}
	morsels := buildMorsels(c.blocks, c.parts, workers)
	if workers > len(morsels) {
		workers = len(morsels)
	}
	ps := &parallelScan{
		morsels: morsels,
		results: make([]chan []blockResult, len(morsels)),
		tickets: make(chan struct{}, workers+2),
		done:    make(chan struct{}),
	}
	for i := range ps.results {
		ps.results[i] = make(chan []blockResult, 1)
	}
	ps.wg.Add(workers)
	// The goroutines capture copied fields, never the cursor itself: a
	// cursor abandoned without Close must become unreachable so the cleanup
	// below can cancel the pipeline (workers otherwise block forever on the
	// ticket semaphore once the consumer stops releasing). Close still
	// joins deterministically.
	parts := c.parts
	decoded, pred, outIdx := c.decoded, c.pred, c.outIdx
	outSchema, filter, identity := c.schema, c.filter, c.identity
	quar, agg, io := c.quar, c.agg, c.io
	runtime.AddCleanup(c, func(ps *parallelScan) { ps.cancel() }, ps)
	for w := 0; w < workers; w++ {
		go func() {
			defer ps.wg.Done()
			// Per-worker scratch: cloned readers, decode scratch and the
			// aggregation scratch are reused across this worker's morsels;
			// batches come from the shared pool (the consumer recycles them).
			cloned := make([][]*segment.Reader, len(parts))
			var dec rowDecoder
			var vs vecScratch
			var as aggScratch
			var rl *runLoader
			if io.coalesce {
				rl = newRunLoader(parts, io.prefetch)
				defer rl.close()
			}
			for {
				// Acquire a run-ahead ticket, then claim the next morsel.
				select {
				case ps.tickets <- struct{}{}:
				case <-ps.done:
					return
				}
				mi := int(ps.claim.Add(1)) - 1
				if mi >= len(ps.morsels) {
					return // queue drained; ticket is moot, nothing waits on it
				}
				res := make([]blockResult, 0, len(ps.morsels[mi]))
				if rl != nil {
					rl.setSeq(ps.morsels[mi])
				}
				for _, ref := range ps.morsels[mi] {
					select {
					case <-ps.done:
						// Canceled mid-morsel: the results decoded so far
						// will never reach the consumer — recycle them.
						recycleResults(res)
						return
					default:
					}
					p := parts[ref.part]
					if cloned[ref.part] == nil {
						rs := make([]*segment.Reader, len(p.readers))
						for si, r := range p.readers {
							if r != nil {
								rs[si] = r.Clone()
							}
						}
						cloned[ref.part] = rs
					}
					load := func() blockResult {
						var r blockResult
						if r.err = rl.ensure(ref, cloned[ref.part]); r.err != nil {
							return r
						}
						switch {
						case agg != nil:
							r.agg, r.err = agg.observeBlock(p, cloned[ref.part], ref.block, filter, &vs, &dec, &as)
						case filter != nil:
							r.batch, r.err = decodeBlockVec(p, cloned[ref.part], ref.block, decoded, outSchema, filter, outIdx, identity, &vs)
						default:
							r.rows, r.err = dec.decodeBlockRows(p, cloned[ref.part], ref.block, decoded, pred, outIdx, identity)
						}
						return r
					}
					r := load()
					if r.err != nil && quar != nil {
						// Quarantine in the worker: retry transient errors,
						// then record the skip and deliver an empty result so
						// next() does not cancel the pipeline.
						skipped, qerr := quar.handle(p, ref, r.err, func() error {
							r = load()
							return r.err
						})
						if skipped {
							r = blockResult{skipped: true}
						} else if qerr != nil {
							r = blockResult{err: qerr}
						}
					}
					res = append(res, r)
					if r.err != nil {
						break // the consumer cancels on this; skip the rest
					}
				}
				ps.results[mi] <- res // buffered(1): never blocks
			}
		}()
	}
	c.par = ps
}

// segColumns lists the column indexes of segment si needed for the decoded
// schema.
func segColumns(p *part, si int, decoded *value.Schema) []int {
	var out []int
	for _, f := range decoded.Fields {
		loc, ok := p.fieldSeg[f.Name]
		if ok && loc[0] == si {
			out = append(out, loc[1])
		}
	}
	return out
}

// seekRow positions the cursor at global stored position pos.
func (c *Cursor) seekRow(pos int64) error {
	if !c.pred.IsTrue() {
		return fmt.Errorf("table: seekRow with predicate unsupported")
	}
	var before int64
	for bi, ref := range c.blocks {
		bm := c.parts[ref.part].entries[firstReadSeg(c.parts[ref.part])].Meta.Blocks[ref.block]
		if before+int64(bm.Rows) > pos {
			c.cur = bi
			if err := c.loadBlock(ref); err != nil {
				return err
			}
			c.cur++
			c.skipTo(int(pos - before))
			return nil
		}
		before += int64(bm.Rows)
	}
	return fmt.Errorf("table: position %d out of range [0,%d)", pos, before)
}

// seekCell positions the cursor at the first block of the given grid cell.
func (c *Cursor) seekCell(cell uint64) error {
	for bi, ref := range c.blocks {
		bm := c.parts[ref.part].entries[firstReadSeg(c.parts[ref.part])].Meta.Blocks[ref.block]
		if bm.Cell == cell {
			c.cur = bi
			c.buf, c.bufPos = nil, 0
			batchPool.Put(c.batch)
			c.batch, c.batchPos = nil, 0
			return nil
		}
	}
	return fmt.Errorf("table: grid cell %d holds no data", cell)
}

func firstReadSeg(p *part) int {
	for si, r := range p.readers {
		if r != nil {
			return si
		}
	}
	return 0
}

// materializeSort drains the cursor and sorts the result.
func (c *Cursor) materializeSort(order []algebra.OrderKey) error {
	var rows []value.Row
	for {
		r, ok, err := c.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		rows = append(rows, r)
	}
	cols := make([]int, len(order))
	desc := make([]bool, len(order))
	for i, k := range order {
		ci := c.schema.Index(k.Field)
		if ci < 0 {
			return fmt.Errorf("table: order field %q not in scan output", k.Field)
		}
		cols[i], desc[i] = ci, k.Desc
	}
	value.SortRows(rows, cols, desc)
	c.sorted, c.sortedPos = rows, 0
	return nil
}

// boundsOf reconstructs grid bounds from catalog metadata.
func boundsOf(tab *catalog.Table) []transforms.GridBounds {
	out := make([]transforms.GridBounds, len(tab.GridBounds))
	for i, b := range tab.GridBounds {
		out[i] = transforms.GridBounds{Field: b.Field, Min: b.Min, Max: b.Max, Cells: b.Cells}
	}
	return out
}

// storedScanOpts are the internal knobs of scanStoredOpts: raw bypasses
// pruning (reorganization reads everything back), noZone disables zone-map
// pruning only, noVec selects the boxed row-at-a-time executor.
type storedScanOpts struct {
	raw, noZone, noVec, quarantine bool
	io                             scanIO
}

// scanStored builds a cursor over the stored representation. fields nil
// selects all stored fields. When raw is true the scan bypasses pruning
// (used by reorganization to read everything back).
func (e *Engine) scanStored(tab *catalog.Table, fields []string, pred algebra.Predicate, raw bool) (*Cursor, error) {
	return e.scanStoredOpts(tab, fields, pred, storedScanOpts{raw: raw})
}

func (e *Engine) scanStoredOpts(tab *catalog.Table, fields []string, pred algebra.Predicate, so storedScanOpts) (*Cursor, error) {
	stored, err := storedSchema(tab)
	if err != nil {
		return nil, err
	}
	if fields == nil {
		fields = stored.Names()
	}
	outSchema, _, err := stored.Project(fields)
	if err != nil {
		return nil, fmt.Errorf("table: %w (this representation does not store the field; alter the layout to include it)", err)
	}
	if err := pred.Validate(stored); err != nil {
		return nil, err
	}
	// Decoded fields: projection ∪ predicate fields (dedup, stored order).
	needed := make(map[string]bool)
	for _, f := range fields {
		needed[f] = true
	}
	for _, f := range pred.Fields() {
		needed[f] = true
	}
	var decodedNames []string
	for _, f := range stored.Names() {
		if needed[f] {
			decodedNames = append(decodedNames, f)
		}
	}
	decoded, _, err := stored.Project(decodedNames)
	if err != nil {
		return nil, err
	}
	outIdx := make([]int, len(fields))
	for i, f := range fields {
		outIdx[i] = decoded.Index(f)
	}

	// Build parts: main rendering, then organized runs (oldest level first —
	// the catalog keeps Runs in chronological order), then each tail batch.
	// The concatenation preserves global insert order across the hierarchy.
	var parts []*part
	if len(tab.Segments) > 0 {
		p, err := e.buildPart(tab.Segments, stored, decoded)
		if err != nil {
			return nil, err
		}
		parts = append(parts, p)
	}
	for _, run := range tab.Runs {
		p, err := e.buildPart(run.Segments, stored, decoded)
		if err != nil {
			return nil, err
		}
		parts = append(parts, p)
	}
	for _, batch := range tab.Tails {
		p, err := e.buildPart(batch, stored, decoded)
		if err != nil {
			return nil, err
		}
		parts = append(parts, p)
	}

	// Candidate blocks with grid/zone pruning.
	prune := e.pruner(tab, pred, so.raw, so.noZone)
	var blocks []blockRef
	for pi, p := range parts {
		seg0 := firstReadSeg(p)
		for bi, bm := range p.entries[seg0].Meta.Blocks {
			if prune(bm) {
				continue
			}
			blocks = append(blocks, blockRef{part: pi, block: bi})
		}
	}

	identity := len(outIdx) == decoded.Arity()
	for i, di := range outIdx {
		if di != i {
			identity = false
			break
		}
	}
	var filter *algebra.CompiledPred
	if !so.noVec {
		filter, err = algebra.CompilePred(pred, decoded)
		if err != nil {
			return nil, err
		}
	}
	c := &Cursor{
		schema:   outSchema,
		decoded:  decoded,
		outIdx:   outIdx,
		identity: identity,
		pred:     pred,
		filter:   filter,
		parts:    parts,
		blocks:   blocks,
		io:       so.io,
	}
	if so.quarantine {
		c.quar = newQuarState()
	}
	return c, nil
}

// buildPart opens readers for the segments of one part that hold decoded
// fields.
func (e *Engine) buildPart(entries []catalog.SegmentEntry, stored, decoded *value.Schema) (*part, error) {
	p := &part{entries: entries, readers: make([]*segment.Reader, len(entries)), fieldSeg: make(map[string][2]int)}
	for si, entry := range entries {
		needsRead := false
		for ci, f := range entry.Fields {
			if decoded.Index(f) >= 0 {
				p.fieldSeg[f] = [2]int{si, ci}
				needsRead = true
			}
		}
		if !needsRead {
			continue
		}
		var segFields []value.Field
		for _, f := range entry.Fields {
			i := stored.Index(f)
			if i < 0 {
				return nil, fmt.Errorf("table: segment field %q missing from stored schema", f)
			}
			segFields = append(segFields, stored.Fields[i])
		}
		r, err := segment.NewReader(e.Source, entry.Meta, segment.Spec{Fields: segFields, Codecs: entry.Codecs})
		if err != nil {
			return nil, err
		}
		p.readers[si] = r
		if entry.Meta.Rows > p.rows {
			p.rows = entry.Meta.Rows
		}
	}
	if firstReadSeg(p) >= len(p.readers) || p.readers[firstReadSeg(p)] == nil {
		return nil, fmt.Errorf("table: no readable segment in part")
	}
	return p, nil
}

// pruner returns a block-skip function using grid cell ranges and zone maps.
func (e *Engine) pruner(tab *catalog.Table, pred algebra.Predicate, raw, noZone bool) func(segment.BlockMeta) bool {
	if raw || pred.IsTrue() {
		return func(segment.BlockMeta) bool { return false }
	}
	bounds := boundsOf(tab)
	// Per-dimension cell ranges implied by the predicate.
	type dimRange struct {
		lo, hi int
		active bool
	}
	dimRanges := make([]dimRange, len(bounds))
	for d, b := range bounds {
		lo, hi, _, _, found := pred.Bounds(b.Field)
		if !found {
			continue
		}
		cl, ch := 0, b.Cells-1
		if !lo.IsNull() {
			cl = b.CellOf(lo.Float())
		}
		if !hi.IsNull() {
			ch = b.CellOf(hi.Float())
		}
		dimRanges[d] = dimRange{lo: cl, hi: ch, active: true}
	}
	// Zone-map bounds for every predicate field.
	type zbound struct {
		field  string
		lo, hi value.Value
	}
	var zbounds []zbound
	if !noZone {
		for _, f := range pred.Fields() {
			lo, hi, _, _, found := pred.Bounds(f)
			if found {
				zbounds = append(zbounds, zbound{f, lo, hi})
			}
		}
	}
	return func(bm segment.BlockMeta) bool {
		if bm.Cell != segment.NoCell && len(bounds) > 0 {
			coords := transforms.CellCoords(bm.Cell, bounds)
			for d, dr := range dimRanges {
				if dr.active && (coords[d] < dr.lo || coords[d] > dr.hi) {
					return true
				}
			}
		}
		for _, zb := range zbounds {
			for _, z := range bm.Zones {
				if z.Field != zb.field {
					continue
				}
				if !zb.lo.IsNull() && z.Max < zb.lo.Float() {
					return true
				}
				if !zb.hi.IsNull() && z.Min > zb.hi.Float() {
					return true
				}
			}
		}
		return false
	}
}

// EstimateScan predicts the I/O footprint of a scan without reading pages
// (the arithmetic behind scan_cost, paper §4.1/§5: bytes of I/O + seeks).
func (e *Engine) EstimateScan(name string, opts ScanOptions) (cost.Estimate, error) {
	tab, err := e.cat.Get(name)
	if err != nil {
		return cost.Estimate{}, err
	}
	stored, err := storedSchema(tab)
	if err != nil {
		return cost.Estimate{}, err
	}
	fields := opts.Fields
	if fields == nil {
		fields = stored.Names()
	}
	needed := make(map[string]bool)
	for _, f := range fields {
		needed[f] = true
	}
	for _, f := range opts.Pred.Fields() {
		needed[f] = true
	}
	prune := e.pruner(tab, opts.Pred, false, opts.NoZonePrune)
	payload := e.file.PayloadSize()

	var est cost.Estimate
	addPart := func(entries []catalog.SegmentEntry) {
		for _, entry := range entries {
			read := false
			for _, f := range entry.Fields {
				if needed[f] {
					read = true
					break
				}
			}
			if !read {
				continue
			}
			// Collect page ranges of surviving blocks; merge adjacent runs.
			type run struct{ lo, hi uint64 }
			var runs []run
			for _, bm := range entry.Meta.Blocks {
				if prune(bm) {
					continue
				}
				lo := bm.Off / uint64(payload)
				hi := (bm.Off + uint64(bm.Len) - 1) / uint64(payload)
				if n := len(runs); n > 0 && lo <= runs[n-1].hi+1 {
					if hi > runs[n-1].hi {
						runs[n-1].hi = hi
					}
				} else {
					runs = append(runs, run{lo, hi})
				}
				est.Rows += int64(bm.Rows)
			}
			for _, r := range runs {
				est.Pages += r.hi - r.lo + 1
				est.Seeks++
			}
		}
	}
	addPart(tab.Segments)
	for _, run := range tab.Runs {
		addPart(run.Segments)
	}
	for _, batch := range tab.Tails {
		addPart(batch)
	}
	// Rows were counted once per segment read; normalize to one copy.
	nread := 0
	countSegs := func(entries []catalog.SegmentEntry) {
		for _, entry := range entries {
			for _, f := range entry.Fields {
				if needed[f] {
					nread++
					break
				}
			}
		}
	}
	if len(tab.Segments) > 0 {
		countSegs(tab.Segments)
	} else if len(tab.Runs) > 0 {
		countSegs(tab.Runs[0].Segments)
	}
	if nread > 1 && est.Rows > 0 {
		est.Rows /= int64(nread)
	}
	return est, nil
}

// EstimateGet predicts the I/O footprint of a getElement call.
func (e *Engine) EstimateGet(name string, fields []string, index []int64) (cost.Estimate, error) {
	tab, err := e.cat.Get(name)
	if err != nil {
		return cost.Estimate{}, err
	}
	stored, err := storedSchema(tab)
	if err != nil {
		return cost.Estimate{}, err
	}
	if fields == nil {
		fields = stored.Names()
	}
	needed := make(map[string]bool)
	for _, f := range fields {
		needed[f] = true
	}
	payload := uint64(e.file.PayloadSize())
	var est cost.Estimate
	for _, entry := range tab.Segments {
		read := false
		for _, f := range entry.Fields {
			if needed[f] {
				read = true
				break
			}
		}
		if !read || len(entry.Meta.Blocks) == 0 {
			continue
		}
		// One block read per needed segment (positional access).
		var bm segment.BlockMeta
		if len(index) == 1 {
			i := sort.Search(len(entry.Meta.Blocks), func(i int) bool {
				return entry.Meta.Blocks[i].RowStart > index[0]
			})
			if i == 0 {
				i = 1
			}
			bm = entry.Meta.Blocks[i-1]
		} else {
			bm = entry.Meta.Blocks[0]
		}
		est.Pages += uint64(bm.Len)/payload + 1
		est.Seeks++
		est.Rows++
	}
	return est, nil
}
