package table

// Differential property test for leveled run storage: a multi-level table
// (main rendering + several organized runs + leftover tails) must be
// value-identical to the same rows held in one compacted rendering, under
// every layout × predicate × executor variant. The oracle is the boxed
// serial scan of the single-rendering table; the subject is every
// combination of {serial, parallel} × {vectorized, boxed} × {zone prune
// on/off} × {quarantine on/off} over the leveled table. Quarantine on clean
// data must be a no-op (damage paths are covered by the fault tests).

import (
	"fmt"
	"sort"
	"testing"

	"rodentstore/internal/algebra"
	"rodentstore/internal/value"
)

// sortedKeys renders rows to a deterministic, comparable form.
func sortedKeys(rows []value.Row) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = rowKey(r)
	}
	sort.Strings(keys)
	return keys
}

func TestCompactDifferentialOracle(t *testing.T) {
	// rounds/batch are tuned per policy so the subject ends with runs at two
	// distinct levels plus unfolded tails: size-tiered needs fanout folds to
	// cascade plus one more for a fresh L1 run; leveled (with chunk[100]
	// shrinking the per-level row target to 100·fanout^level) needs enough
	// rounds to outgrow L1 and promote, plus one more.
	cases := []struct {
		policy string // compaction directive wrapped around base
		base   string // layout underneath
		rounds int
		batch  int // rows per insert batch (2 batches per round)
		preds  []string
	}{
		{"sizetiered[2]", "rows(Traces)", 3, 35, []string{"", "lat >= 42.359 and lat < 42.361"}},
		{"sizetiered[3]", "cols(Traces)", 4, 35, []string{"", `id = "car-2"`}},
		{"leveled[2]", "chunk[100](colgroup[lat,lon](Traces))", 4, 35, []string{"", "t >= 120 and t < 1500"}},
		{"sizetiered[2]", "orderby[t](Traces)", 3, 35, []string{"", "lat >= 42.359 and lat < 42.361"}},
		{"leveled[3]", "chunk[100](groupby[id](Traces))", 4, 50, []string{"", `id = "car-1"`}},
		{"sizetiered[2]", "dict[id](bitpack[t](rows(Traces)))", 3, 35, []string{"", "t >= 0 and t < 150"}},
		{"leveled[2]", "chunk[100](project[lat,lon](orderby[lat](Traces)))", 4, 35, []string{"", "lat >= 42.359"}},
	}
	for _, c := range cases {
		layout := fmt.Sprintf("%s(%s)", c.policy, c.base)
		t.Run(layout, func(t *testing.T) {
			// Subject: bulk load + insert/compact rounds build main segments,
			// runs at more than one level, and leftover tails.
			subj, _, rows := setup(t, layout, 200)
			for round := 0; round < c.rounds; round++ {
				rows = append(rows, insertBatches(t, subj, 2, c.batch, 1000+round*1000)...)
				if err := subj.Compact("Traces"); err != nil {
					t.Fatal(err)
				}
			}
			rows = append(rows, insertBatches(t, subj, 1, 15, 9000)...) // tails left unfolded
			tab, _ := subj.cat.Get("Traces")
			if len(tab.Runs) < 2 || tab.Runs[0].Level == tab.Runs[len(tab.Runs)-1].Level ||
				len(tab.Tails) == 0 || len(tab.Segments) == 0 {
				t.Fatalf("subject not multi-level: main=%d runs=%+v tails=%d",
					len(tab.Segments), tab.Runs, len(tab.Tails))
			}

			// Oracle: identical rows, same base layout, one rendering.
			oracle, _, _ := newEngine(t)
			if err := oracle.Create("Traces", tracesSchema(), c.base); err != nil {
				t.Fatal(err)
			}
			if err := oracle.Load("Traces", rows); err != nil {
				t.Fatal(err)
			}

			for _, predSrc := range c.preds {
				var pred algebra.Predicate
				if predSrc != "" {
					var err error
					pred, err = algebra.ParsePredicate(predSrc)
					if err != nil {
						t.Fatal(err)
					}
				}
				cur, err := oracle.Scan("Traces", ScanOptions{Pred: pred, NoVectorize: true})
				if err != nil {
					t.Fatal(err)
				}
				want := sortedKeys(drain(t, cur))

				for variant := 0; variant < 16; variant++ {
					opts := ScanOptions{
						Pred:        pred,
						Parallel:    variant&1 != 0,
						NoVectorize: variant&2 != 0,
						NoZonePrune: variant&4 != 0,
						Quarantine:  variant&8 != 0,
					}
					cur, err := subj.Scan("Traces", opts)
					if err != nil {
						t.Fatalf("pred=%q variant=%d: %v", predSrc, variant, err)
					}
					got := sortedKeys(drain(t, cur))
					if len(got) != len(want) {
						t.Fatalf("pred=%q variant=%#v: %d rows, oracle %d",
							predSrc, opts, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("pred=%q variant=%#v: row %d differs\n got %s\nwant %s",
								predSrc, opts, i, got[i], want[i])
						}
					}
					if q := cur.Report().Skipped; len(q) != 0 {
						t.Fatalf("clean data quarantined extents: %v", q)
					}
				}
			}
		})
	}
}
