// Package wal implements RodentStore's write-ahead log. The paper's first
// motivation (§1) is that each new storage system duplicates "transaction,
// lock, and memory management facilities"; RodentStore provides them once,
// under every layout the algebra can express.
//
// The log is redo-only with full page images and a no-steal discipline: a
// transaction's page writes are staged privately (see package txn), appended
// to the log as images, fsync'd, and only then applied to the main page
// file. Recovery replays the images of committed transactions in log order;
// uncommitted tails are ignored. After a checkpoint (all applied pages
// durable) the log is truncated.
//
// Two mechanisms keep the append path cheap under concurrency:
//
//   - Appends are encoded into a pending in-memory buffer under the log
//     mutex and written to the file in one positional write when durability
//     is requested — a one-page commit (begin + image + commit) is a single
//     write syscall, and the encode path reuses the buffer's capacity
//     instead of allocating per record.
//
//   - Sync implements group commit: durability waits on a shared ticket.
//     One caller becomes the sync leader, flushes the pending buffer and
//     issues the fsync; every commit that was appended while the previous
//     fsync was in flight is absorbed by the same fsync. Under W concurrent
//     committers one disk sync acknowledges up to W commits.
//
// # The fsyncgate rule
//
// A failed fsync is treated as fatal for the log's file descriptor. On
// Linux (and others), a failed fsync may mark the dirty pages clean without
// having written them, so a retried fsync can report success while the data
// never reached disk — the failure mode that cost PostgreSQL acknowledged
// transactions ("fsyncgate", 2018). The log therefore latches the first
// sync failure as ErrSyncFailed: every subsequent Sync/SyncTo/Flush returns
// it without touching the file, no commit is ever acknowledged on a retried
// fsync, and the only way forward is to close and reopen the log, which
// re-reads the durable prefix from disk and re-establishes a truthful
// logical end.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"rodentstore/internal/pager"
	"rodentstore/internal/vfs"
)

// ErrSyncFailed is the latched, typed form of the log's first fsync (or
// append-write) failure. It wraps the first cause — later callers inspect
// it with errors.As/Is — and means the log accepts no further durability
// requests until it is reopened; see "The fsyncgate rule" above.
type ErrSyncFailed struct {
	Cause error
}

func (e *ErrSyncFailed) Error() string {
	return fmt.Sprintf("wal: sync failed, log unusable until reopen: %v", e.Cause)
}

func (e *ErrSyncFailed) Unwrap() error { return e.Cause }

// ErrCorruptRecord reports a structurally corrupt record frame that is NOT
// a plain crash tail: well-formed records exist beyond it, so the log lost
// data in its middle (media corruption, not a torn append). Recovery still
// applies the torn-tail rule — everything from Off on is ignored — but
// integrity checks surface this loudly because committed transactions after
// Off are silently dropped by that rule.
type ErrCorruptRecord struct {
	Off    int64 // byte offset of the corrupt frame
	Detail string
}

func (e *ErrCorruptRecord) Error() string {
	return fmt.Sprintf("wal: corrupt record at offset %d: %s", e.Off, e.Detail)
}

// RecordType tags log records.
type RecordType uint8

const (
	// RecBegin marks the start of a transaction.
	RecBegin RecordType = 1
	// RecPageImage carries the full after-image of one page.
	RecPageImage RecordType = 2
	// RecCommit marks a transaction durable; its images must be replayed.
	RecCommit RecordType = 3
	// RecAbort marks a transaction rolled back; its images are ignored.
	RecAbort RecordType = 4
	// RecCatalog carries an opaque catalog delta (e.g. a tail-append blob);
	// recovery hands committed deltas to the catalog callback in log order.
	RecCatalog RecordType = 5
)

// Record is one log entry.
type Record struct {
	Type    RecordType
	TxnID   uint64
	PageID  pager.PageID
	Payload []byte
}

// defaultBufCap pre-sizes the pending append buffer so a small commit
// (records for about one page of payload) encodes without growing it.
const defaultBufCap = 4096

// preallocBytes is the physical space kept allocated ahead of the append
// cursor. Appends into preallocated blocks make the commit fsync a pure
// data sync (no block-allocation or size-change metadata in the journal),
// which is most of its cost on ext4. The file's size is therefore larger
// than its logical content; Open finds the logical end by scanning record
// frames (the same torn-tail rule Scan applies).
const preallocBytes = 4 << 20

// Log is an append-only record file. Methods are safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	f    vfs.File
	path string
	size int64  // bytes written to the file (excludes wbuf)
	wbuf []byte // encoded records not yet written to the file
	seq  uint64 // append ticket: incremented once per Append

	// Group-commit state. Lock order: mu may be held when taking gmu
	// (Truncate does), but gmu is never held while taking mu — the sync
	// leader takes them strictly in sequence.
	gmu     sync.Mutex
	gcond   *sync.Cond
	syncing bool   // a leader's fsync is in flight
	synced  uint64 // highest append ticket known durable
	// syncErr latches the first fsync failure as *ErrSyncFailed (see "The
	// fsyncgate rule" in the package comment); once set, every
	// Sync/SyncTo/Flush fails until the log is reopened.
	syncErr *ErrSyncFailed

	// fsyncs counts physical fsync calls (group-commit leaders + Flush);
	// comparing it with the number of commits shows the amortization.
	fsyncs atomic.Uint64
}

// Fsyncs returns the number of physical fsync calls issued so far. With
// group commit, concurrent committers share leaders' fsyncs, so this grows
// more slowly than the commit count.
func (l *Log) Fsyncs() uint64 { return l.fsyncs.Load() }

// Open opens (or creates) the log at path on the OS file system.
func Open(path string) (*Log, error) {
	return OpenAt(vfs.OS, path)
}

// OpenAt opens (or creates) the log at path on the given file system.
func OpenAt(fsys vfs.FS, path string) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	size, err := logicalSize(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: read %s: %w", path, err)
	}
	l := &Log{f: f, path: path, size: size, wbuf: make([]byte, 0, defaultBufCap)}
	l.gcond = sync.NewCond(&l.gmu)
	// Best effort: without preallocation the log still works, each fsync
	// just pays the journal metadata cost.
	prealloc := int64(preallocBytes)
	if size > prealloc {
		prealloc = size
	}
	_ = f.Preallocate(prealloc)
	return l, nil
}

// logicalSize walks well-formed record frames from the start and returns
// the offset where they stop — the log's logical end, which is shorter than
// the file when space is preallocated (or when a crash left a torn tail;
// the next append overwrites it, matching Scan's recovery rule). It reads
// incrementally and stops at the first bad frame, so opening a log never
// reads the (mostly zero) preallocated region into memory.
func logicalSize(f vfs.File) (int64, error) {
	r := bufio.NewReaderSize(io.NewSectionReader(f, 0, 1<<62), 64<<10)
	var off int64
	var hdr [8]byte
	var body []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return off, nil // clean EOF or short header: logical end
		}
		n := int(binary.LittleEndian.Uint32(hdr[:]))
		crc := binary.LittleEndian.Uint32(hdr[4:])
		// A frame holds at most a page image plus fixed fields; a length
		// wildly past that is crash garbage, not a record to buffer.
		if n < 17 || n > 64<<20 {
			return off, nil
		}
		if cap(body) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(r, body); err != nil {
			return off, nil // torn tail
		}
		if crc32.ChecksumIEEE(body) != crc {
			return off, nil // corrupt tail
		}
		off += int64(8 + n)
	}
}

// ReserveBuffer grows the pending append buffer to at least n bytes of
// capacity (a no-op if it is already that large), so commits up to that size
// encode without reallocation. Callers that know the page size reserve one
// page plus record framing.
func (l *Log) ReserveBuffer(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cap(l.wbuf)-len(l.wbuf) < n {
		grown := make([]byte, len(l.wbuf), len(l.wbuf)+n)
		copy(grown, l.wbuf)
		l.wbuf = grown
	}
}

// Append encodes one record into the pending buffer (not yet on disk; call
// Sync or Flush for durability).
// Framing: [total u32][crc u32][type u8][txn u64][page u64][payload].
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	off := len(l.wbuf)
	l.wbuf = append(l.wbuf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	l.wbuf = append(l.wbuf, byte(r.Type))
	l.wbuf = binary.LittleEndian.AppendUint64(l.wbuf, r.TxnID)
	l.wbuf = binary.LittleEndian.AppendUint64(l.wbuf, uint64(r.PageID))
	l.wbuf = append(l.wbuf, r.Payload...)
	body := l.wbuf[off+8:]
	binary.LittleEndian.PutUint32(l.wbuf[off:], uint32(len(body)))
	binary.LittleEndian.PutUint32(l.wbuf[off+4:], crc32.ChecksumIEEE(body))
	l.seq++
	return nil
}

// flushBufLocked writes the pending buffer to the file in one positional
// write. Caller holds l.mu.
func (l *Log) flushBufLocked() error {
	if len(l.wbuf) == 0 {
		return nil
	}
	if _, err := l.f.WriteAt(l.wbuf, l.size); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(l.wbuf))
	l.wbuf = l.wbuf[:0]
	return nil
}

// Sync makes every record appended so far durable, using group commit: if
// another caller's fsync is already in flight, this caller waits for the
// next round and shares its fsync with every other waiter instead of
// issuing one of its own.
func (l *Log) Sync() error {
	l.mu.Lock()
	seq := l.seq
	l.mu.Unlock()
	return l.SyncTo(seq)
}

// SyncTo blocks until the record with append ticket seq (as observed by the
// caller's own Append calls via Sync) is durable. At most one fsync is in
// flight at a time; each fsync covers every record appended before it
// started.
func (l *Log) SyncTo(seq uint64) error {
	l.gmu.Lock()
	for {
		if err := l.syncErr; err != nil {
			l.gmu.Unlock()
			return err
		}
		if l.synced >= seq {
			l.gmu.Unlock()
			return nil
		}
		if !l.syncing {
			break // become this round's leader
		}
		l.gcond.Wait()
	}
	l.syncing = true
	l.gmu.Unlock()

	// Leader: write out the pending buffer, note the highest ticket the
	// fsync will cover, then sync. Appends that land during the fsync are
	// not covered (they stay in the buffer for the next round).
	l.mu.Lock()
	top := l.seq
	err := l.flushBufLocked()
	l.mu.Unlock()
	if err == nil {
		l.fsyncs.Add(1)
		if serr := l.f.Sync(); serr != nil {
			err = fmt.Errorf("wal: sync: %w", serr)
		}
	}

	l.gmu.Lock()
	l.syncing = false
	if err == nil {
		if top > l.synced {
			l.synced = top
		}
	} else {
		if l.syncErr == nil {
			l.syncErr = &ErrSyncFailed{Cause: err} // latch: no retries on this fd
		}
		err = l.syncErr // leader and waiters surface the same typed error
	}
	l.gcond.Broadcast()
	l.gmu.Unlock()
	return err
}

// Flush makes all appended records durable with an unconditional fsync of
// its own (no group-commit ticket sharing). Kept for callers that want
// per-call sync semantics; commit paths use Sync.
func (l *Log) Flush() error {
	l.gmu.Lock()
	if err := l.syncErr; err != nil {
		l.gmu.Unlock()
		return err
	}
	l.gmu.Unlock()
	l.mu.Lock()
	top := l.seq
	err := l.flushBufLocked()
	l.mu.Unlock()
	if err == nil {
		l.fsyncs.Add(1)
		if serr := l.f.Sync(); serr != nil {
			err = fmt.Errorf("wal: flush: %w", serr)
		}
	}
	l.gmu.Lock()
	if err == nil {
		if top > l.synced {
			l.synced = top
		}
	} else {
		if l.syncErr == nil {
			l.syncErr = &ErrSyncFailed{Cause: err} // same latch as SyncTo
		}
		err = l.syncErr
	}
	l.gmu.Unlock()
	return err
}

// Truncate empties the log (after a checkpoint).
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	_ = l.f.Preallocate(preallocBytes) // fresh zeroed append space
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync after truncate: %w", err)
	}
	l.size = 0
	l.wbuf = l.wbuf[:0]
	// Everything appended so far is gone; no ticket can still want it.
	top := l.seq
	l.gmu.Lock()
	if top > l.synced {
		l.synced = top
	}
	l.gmu.Unlock()
	return nil
}

// Size returns the current log size in bytes, counting records still in the
// pending buffer.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size + int64(len(l.wbuf))
}

// Close flushes the pending buffer and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	err := l.flushBufLocked()
	l.mu.Unlock()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Scan reads all well-formed records from the start of the log, stopping
// silently at the first torn or corrupt record (the crash tail).
func (l *Log) Scan() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flushBufLocked(); err != nil {
		return nil, err
	}
	// The logical log is [0, l.size); anything beyond is preallocated
	// append space (or a previously abandoned tail the next append will
	// overwrite), which the frame walk would stop at anyway.
	data := make([]byte, l.size)
	if _, err := io.ReadFull(io.NewSectionReader(l.f, 0, l.size), data); err != nil {
		return nil, fmt.Errorf("wal: read: %w", err)
	}
	var out []Record
	off := 0
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n < 17 || off+8+n > len(data) {
			break // torn tail
		}
		body := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(body) != crc {
			break // corrupt tail
		}
		rec := Record{
			Type:   RecordType(body[0]),
			TxnID:  binary.LittleEndian.Uint64(body[1:]),
			PageID: pager.PageID(binary.LittleEndian.Uint64(body[9:])),
		}
		if len(body) > 17 {
			rec.Payload = append([]byte(nil), body[17:]...)
		}
		out = append(out, rec)
		off += 8 + n
	}
	return out, nil
}

// VerifyReport summarizes a structural walk of the log file.
type VerifyReport struct {
	// Records is the number of well-formed frames from the start.
	Records int
	// LogicalEnd is where they stop.
	LogicalEnd int64
	// TailBytes is how many non-zero bytes follow LogicalEnd — a crash tail
	// recovery ignores by the torn-tail rule. Nonzero is unremarkable after
	// a crash; it only means the last append never committed.
	TailBytes int
}

// Verify walks the log's frames and reports its structure. It returns an
// *ErrCorruptRecord only for mid-log corruption: a well-formed frame found
// beyond the point where the frame walk stopped, which means the torn-tail
// rule is silently dropping committed records. (A plain torn tail — garbage
// with nothing valid after it — is normal crash residue and is reported in
// the VerifyReport, not as an error.)
func (l *Log) Verify() (VerifyReport, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var rep VerifyReport
	if err := l.flushBufLocked(); err != nil {
		return rep, err
	}
	fileSize, err := l.f.Size()
	if err != nil {
		return rep, fmt.Errorf("wal: verify: %w", err)
	}
	data := make([]byte, fileSize)
	if _, err := io.ReadFull(io.NewSectionReader(l.f, 0, fileSize), data); err != nil {
		return rep, fmt.Errorf("wal: verify read: %w", err)
	}
	off := 0
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n < 17 || n > 64<<20 || off+8+n > len(data) {
			break
		}
		if crc32.ChecksumIEEE(data[off+8:off+8+n]) != binary.LittleEndian.Uint32(data[off+4:]) {
			break
		}
		rep.Records++
		off += 8 + n
	}
	rep.LogicalEnd = int64(off)
	for _, b := range data[off:] {
		if b != 0 {
			rep.TailBytes++
		}
	}
	if rep.TailBytes == 0 {
		return rep, nil
	}
	// Garbage after the logical end: a single torn append leaves nothing
	// parseable behind it, so if a well-formed frame exists at any later
	// offset the corruption is mid-log. Bound the search — this is an
	// integrity check, not a recovery path.
	limit := off + (1 << 20)
	if limit > len(data) {
		limit = len(data)
	}
	for cand := off + 1; cand+8 <= limit; cand++ {
		n := int(binary.LittleEndian.Uint32(data[cand:]))
		if n < 17 || n > 64<<20 || cand+8+n > len(data) {
			continue
		}
		if crc32.ChecksumIEEE(data[cand+8:cand+8+n]) == binary.LittleEndian.Uint32(data[cand+4:]) {
			return rep, &ErrCorruptRecord{
				Off:    int64(off),
				Detail: fmt.Sprintf("well-formed record at offset %d beyond corrupt region; committed records are being dropped", cand),
			}
		}
	}
	return rep, nil
}

// Recover replays the log: for every committed transaction, apply is called
// with each page image in log order. It returns the number of transactions
// replayed. Aborted and unfinished transactions are skipped, as are catalog
// deltas (use RecoverFull to replay those too).
func (l *Log) Recover(apply func(pager.PageID, []byte) error) (int, error) {
	return l.RecoverFull(apply, nil)
}

// RecoverFull replays the log like Recover and additionally hands each
// committed transaction's RecCatalog payloads to applyCatalog (nil to skip
// them), interleaved with that transaction's page images in log order.
func (l *Log) RecoverFull(apply func(pager.PageID, []byte) error, applyCatalog func([]byte) error) (int, error) {
	recs, err := l.Scan()
	if err != nil {
		return 0, err
	}
	pending := make(map[uint64][]Record)
	replayed := 0
	for _, r := range recs {
		switch r.Type {
		case RecBegin:
			pending[r.TxnID] = nil
		case RecPageImage, RecCatalog:
			pending[r.TxnID] = append(pending[r.TxnID], r)
		case RecAbort:
			delete(pending, r.TxnID)
		case RecCommit:
			for _, rec := range pending[r.TxnID] {
				if rec.Type == RecCatalog {
					if applyCatalog == nil {
						continue
					}
					if err := applyCatalog(rec.Payload); err != nil {
						return replayed, fmt.Errorf("wal: replay txn %d catalog delta: %w", r.TxnID, err)
					}
					continue
				}
				if err := apply(rec.PageID, rec.Payload); err != nil {
					return replayed, fmt.Errorf("wal: replay txn %d page %d: %w", r.TxnID, rec.PageID, err)
				}
			}
			delete(pending, r.TxnID)
			replayed++
		}
	}
	return replayed, nil
}
