// Package wal implements RodentStore's write-ahead log. The paper's first
// motivation (§1) is that each new storage system duplicates "transaction,
// lock, and memory management facilities"; RodentStore provides them once,
// under every layout the algebra can express.
//
// The log is redo-only with full page images and a no-steal discipline: a
// transaction's page writes are staged privately (see package txn), appended
// to the log as images, fsync'd, and only then applied to the main page
// file. Recovery replays the images of committed transactions in log order;
// uncommitted tails are ignored. After a checkpoint (all applied pages
// durable) the log is truncated.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"rodentstore/internal/pager"
)

// RecordType tags log records.
type RecordType uint8

const (
	// RecBegin marks the start of a transaction.
	RecBegin RecordType = 1
	// RecPageImage carries the full after-image of one page.
	RecPageImage RecordType = 2
	// RecCommit marks a transaction durable; its images must be replayed.
	RecCommit RecordType = 3
	// RecAbort marks a transaction rolled back; its images are ignored.
	RecAbort RecordType = 4
)

// Record is one log entry.
type Record struct {
	Type    RecordType
	TxnID   uint64
	PageID  pager.PageID
	Payload []byte
}

// Log is an append-only record file. Methods are safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	path string
	size int64
}

// Open opens (or creates) the log at path.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	return &Log{f: f, path: path, size: size}, nil
}

// Append writes one record to the log buffer (not yet durable; call Flush).
// Framing: [total u32][crc u32][type u8][txn u64][page u64][payload].
func (l *Log) Append(r Record) error {
	body := make([]byte, 0, 17+len(r.Payload))
	body = append(body, byte(r.Type))
	body = binary.LittleEndian.AppendUint64(body, r.TxnID)
	body = binary.LittleEndian.AppendUint64(body, uint64(r.PageID))
	body = append(body, r.Payload...)

	head := make([]byte, 8)
	binary.LittleEndian.PutUint32(head, uint32(len(body)))
	binary.LittleEndian.PutUint32(head[4:], crc32.ChecksumIEEE(body))

	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.WriteAt(append(head, body...), l.size); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(head) + len(body))
	return nil
}

// Flush makes all appended records durable.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	return nil
}

// Truncate empties the log (after a checkpoint).
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync after truncate: %w", err)
	}
	l.size = 0
	return nil
}

// Size returns the current log size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close closes the log file.
func (l *Log) Close() error { return l.f.Close() }

// Scan reads all well-formed records from the start of the log, stopping
// silently at the first torn or corrupt record (the crash tail).
func (l *Log) Scan() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	data, err := io.ReadAll(l.f)
	if err != nil {
		return nil, fmt.Errorf("wal: read: %w", err)
	}
	var out []Record
	off := 0
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n < 17 || off+8+n > len(data) {
			break // torn tail
		}
		body := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(body) != crc {
			break // corrupt tail
		}
		rec := Record{
			Type:   RecordType(body[0]),
			TxnID:  binary.LittleEndian.Uint64(body[1:]),
			PageID: pager.PageID(binary.LittleEndian.Uint64(body[9:])),
		}
		if len(body) > 17 {
			rec.Payload = append([]byte(nil), body[17:]...)
		}
		out = append(out, rec)
		off += 8 + n
	}
	return out, nil
}

// Recover replays the log: for every committed transaction, apply is called
// with each page image in log order. It returns the number of transactions
// replayed. Aborted and unfinished transactions are skipped.
func (l *Log) Recover(apply func(pager.PageID, []byte) error) (int, error) {
	recs, err := l.Scan()
	if err != nil {
		return 0, err
	}
	pending := make(map[uint64][]Record)
	replayed := 0
	for _, r := range recs {
		switch r.Type {
		case RecBegin:
			pending[r.TxnID] = nil
		case RecPageImage:
			pending[r.TxnID] = append(pending[r.TxnID], r)
		case RecAbort:
			delete(pending, r.TxnID)
		case RecCommit:
			for _, img := range pending[r.TxnID] {
				if err := apply(img.PageID, img.Payload); err != nil {
					return replayed, fmt.Errorf("wal: replay txn %d page %d: %w", r.TxnID, img.PageID, err)
				}
			}
			delete(pending, r.TxnID)
			replayed++
		}
	}
	return replayed, nil
}
