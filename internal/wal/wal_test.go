package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"rodentstore/internal/pager"
)

func newLog(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func TestAppendScanRoundtrip(t *testing.T) {
	l, _ := newLog(t)
	recs := []Record{
		{Type: RecBegin, TxnID: 1},
		{Type: RecPageImage, TxnID: 1, PageID: 7, Payload: []byte("page seven")},
		{Type: RecPageImage, TxnID: 1, PageID: 8, Payload: []byte{}},
		{Type: RecCommit, TxnID: 1},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := l.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		g := got[i]
		if g.Type != r.Type || g.TxnID != r.TxnID || g.PageID != r.PageID {
			t.Errorf("record %d: got %+v want %+v", i, g, r)
		}
		if string(g.Payload) != string(r.Payload) {
			t.Errorf("record %d payload: got %q want %q", i, g.Payload, r.Payload)
		}
	}
}

func TestScanStopsAtTornTail(t *testing.T) {
	l, path := newLog(t)
	l.Append(Record{Type: RecBegin, TxnID: 1})
	l.Append(Record{Type: RecCommit, TxnID: 1})
	l.Flush()
	// Simulate a torn write: append garbage half-record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{200, 0, 0, 0, 1, 2})
	f.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, err := l2.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("torn tail should be dropped: got %d records", len(got))
	}
}

func TestScanStopsAtCorruptRecord(t *testing.T) {
	l, path := newLog(t)
	l.Append(Record{Type: RecBegin, TxnID: 1})
	l.Append(Record{Type: RecPageImage, TxnID: 1, PageID: 3, Payload: []byte("abcdef")})
	l.Append(Record{Type: RecCommit, TxnID: 1})
	l.Flush()
	end := l.Size() // logical end: the file itself is preallocated longer
	raw, _ := os.ReadFile(path)
	raw[end-2] ^= 0xff // corrupt inside the commit record
	os.WriteFile(path, raw, 0o644)

	l2, _ := Open(path)
	defer l2.Close()
	got, _ := l2.Scan()
	if len(got) != 2 {
		t.Fatalf("corrupt record should stop the scan: got %d", len(got))
	}
}

func TestRecoverAppliesOnlyCommitted(t *testing.T) {
	l, _ := newLog(t)
	// txn 1 commits; txn 2 aborts; txn 3 never finishes.
	l.Append(Record{Type: RecBegin, TxnID: 1})
	l.Append(Record{Type: RecPageImage, TxnID: 1, PageID: 10, Payload: []byte("one")})
	l.Append(Record{Type: RecBegin, TxnID: 2})
	l.Append(Record{Type: RecPageImage, TxnID: 2, PageID: 20, Payload: []byte("two")})
	l.Append(Record{Type: RecCommit, TxnID: 1})
	l.Append(Record{Type: RecAbort, TxnID: 2})
	l.Append(Record{Type: RecBegin, TxnID: 3})
	l.Append(Record{Type: RecPageImage, TxnID: 3, PageID: 30, Payload: []byte("three")})
	l.Flush()

	applied := map[pager.PageID]string{}
	n, err := l.Recover(func(id pager.PageID, img []byte) error {
		applied[id] = string(img)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("replayed %d txns, want 1", n)
	}
	if applied[10] != "one" {
		t.Error("committed image not applied")
	}
	if _, ok := applied[20]; ok {
		t.Error("aborted image applied")
	}
	if _, ok := applied[30]; ok {
		t.Error("unfinished image applied")
	}
}

func TestTruncate(t *testing.T) {
	l, _ := newLog(t)
	l.Append(Record{Type: RecBegin, TxnID: 1})
	l.Flush()
	if l.Size() == 0 {
		t.Fatal("log should be non-empty")
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Error("size after truncate should be 0")
	}
	got, _ := l.Scan()
	if len(got) != 0 {
		t.Error("records survive truncate")
	}
}

func TestGroupCommitConcurrentSync(t *testing.T) {
	// Many committers append their records and call Sync concurrently. Every
	// record must be durable when its Sync returns, and the shared ticket
	// must never issue more fsyncs than Sync calls (it typically issues far
	// fewer: one leader's fsync covers every record appended before it).
	l, path := newLog(t)
	const writers, rounds = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := uint64(w*rounds + i + 1)
				if err := l.Append(Record{Type: RecBegin, TxnID: id}); err != nil {
					t.Error(err)
					return
				}
				if err := l.Append(Record{Type: RecCommit, TxnID: id}); err != nil {
					t.Error(err)
					return
				}
				if err := l.Sync(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	syncs := uint64(writers * rounds)
	if fs := l.Fsyncs(); fs == 0 || fs > syncs {
		t.Errorf("fsyncs = %d, want in [1, %d]", fs, syncs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, err := l2.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*rounds*2 {
		t.Fatalf("reopen found %d records, want %d", len(got), writers*rounds*2)
	}
	seen := make(map[uint64]int)
	for _, r := range got {
		seen[r.TxnID]++
	}
	for id := uint64(1); id <= syncs; id++ {
		if seen[id] != 2 {
			t.Fatalf("txn %d: %d records survived, want 2", id, seen[id])
		}
	}
}

func TestSyncAbsorbsConcurrentAppends(t *testing.T) {
	// A Sync only guarantees records appended before it was called; records
	// landing during the fsync stay buffered for the next round and must not
	// be lost or reordered.
	l, _ := newLog(t)
	l.Append(Record{Type: RecBegin, TxnID: 1})
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Type: RecCommit, TxnID: 1})
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := l.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Type != RecBegin || got[1].Type != RecCommit {
		t.Fatalf("got %+v", got)
	}
}

func TestReopenPreservesRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "re.wal")
	l, _ := Open(path)
	l.Append(Record{Type: RecBegin, TxnID: 9})
	l.Append(Record{Type: RecCommit, TxnID: 9})
	l.Flush()
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, _ := l2.Scan()
	if len(got) != 2 || got[0].TxnID != 9 {
		t.Errorf("reopen lost records: %+v", got)
	}
	// Appending after reopen must not clobber existing records.
	l2.Append(Record{Type: RecBegin, TxnID: 10})
	got, _ = l2.Scan()
	if len(got) != 3 {
		t.Errorf("append after reopen: got %d records", len(got))
	}
}
