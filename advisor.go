package rodentstore

import (
	"fmt"
	"strings"

	"rodentstore/internal/algebra"
	"rodentstore/internal/optimizer"
	"rodentstore/internal/table"
	"rodentstore/internal/transforms"
)

// WorkloadQuery is one entry of an advisor workload: the access pattern of
// a query class and its relative frequency.
type WorkloadQuery struct {
	// Fields the query reads (nil = all).
	Fields []string
	// Where is the query's range predicate (same syntax as Query.Where).
	Where string
	// Weight is the relative frequency (default 1).
	Weight float64
}

// Advice is the storage design optimizer's recommendation (paper §5).
type Advice struct {
	// Layout is the recommended storage-algebra expression.
	Layout string
	// EstimatedMs is the predicted total workload cost.
	EstimatedMs float64
	// Alternatives lists every explored design, best first.
	Alternatives []AdviceCandidate
}

// AdviceCandidate is one explored design.
type AdviceCandidate struct {
	Layout      string
	EstimatedMs float64
}

// Advise runs the storage design optimizer over the table's current data
// and the given workload, returning the recommended layout expression. Use
// AlterLayout to apply it.
func (db *DB) Advise(name string, workload []WorkloadQuery) (Advice, error) {
	if len(workload) == 0 {
		return Advice{}, fmt.Errorf("rodentstore: empty workload")
	}
	tab, err := db.cat.Get(name)
	if err != nil {
		return Advice{}, err
	}
	// Sample the stored data for statistics. A few thousand rows suffice
	// for widths, ranges and codec ratios.
	cur, err := db.eng.Scan(name, table.ScanOptions{})
	if err != nil {
		return Advice{}, err
	}
	defer cur.Close()
	var rows []Row
	for len(rows) < 20000 {
		r, ok, err := cur.Next()
		if err != nil {
			return Advice{}, err
		}
		if !ok {
			break
		}
		rows = append(rows, r)
	}
	if len(rows) == 0 {
		return Advice{}, fmt.Errorf("rodentstore: table %q is empty; load data before advising", name)
	}
	stats := optimizer.CollectStats(transforms.Relation{Schema: cur.Schema(), Rows: rows}, 4000)
	stats.RowCount = tab.RowCount // scale sample stats to the full table

	w := optimizer.Workload{}
	for _, q := range workload {
		oq := optimizer.Query{Fields: q.Fields, Weight: q.Weight}
		if strings.TrimSpace(q.Where) != "" {
			pred, err := algebra.ParsePredicate(q.Where)
			if err != nil {
				return Advice{}, err
			}
			oq.Pred = pred
		}
		w.Queries = append(w.Queries, oq)
	}
	opts := optimizer.DefaultOptions()
	opts.PageSize = db.file.PayloadSize()
	rec, err := optimizer.Recommend(name, stats, w, CostModel(), opts)
	if err != nil {
		return Advice{}, err
	}
	out := Advice{Layout: rec.Expr, EstimatedMs: rec.Ms}
	for _, c := range rec.Candidates {
		out.Alternatives = append(out.Alternatives, AdviceCandidate{Layout: c.Expr, EstimatedMs: c.Ms})
	}
	return out, nil
}
