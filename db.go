package rodentstore

import (
	"fmt"
	"strings"

	"rodentstore/internal/algebra"
	"rodentstore/internal/cost"
	"rodentstore/internal/table"
	"rodentstore/internal/value"
)

// CreateTable registers a table with a logical schema and a storage-algebra
// layout expression (validated immediately; rendered on Load).
func (db *DB) CreateTable(name string, fields []Field, layout string) error {
	schema, err := value.NewSchema(fields...)
	if err != nil {
		return err
	}
	return db.eng.Create(name, schema, layout)
}

// DropTable removes a table and frees its storage.
func (db *DB) DropTable(name string) error { return db.eng.Drop(name) }

// Tables lists table names.
func (db *DB) Tables() []string { return db.cat.Names() }

// SchemaOf returns the logical schema of a table.
func (db *DB) SchemaOf(name string) ([]Field, error) {
	tab, err := db.cat.Get(name)
	if err != nil {
		return nil, err
	}
	s, err := tab.Schema()
	if err != nil {
		return nil, err
	}
	return s.Fields, nil
}

// LayoutOf returns the table's current layout expression.
func (db *DB) LayoutOf(name string) (string, error) {
	tab, err := db.cat.Get(name)
	if err != nil {
		return "", err
	}
	return tab.LayoutExpr, nil
}

// RowCount returns the number of logical rows stored.
func (db *DB) RowCount(name string) (int64, error) { return db.eng.RowCount(name) }

// Load bulk-loads rows into an empty table, rendering its layout.
func (db *DB) Load(name string, rows []Row) error { return db.eng.Load(name, rows) }

// Insert appends rows as an unorganized tail batch (paper §5's "reorganize
// only new data"); Reorganize merges tails into the main layout.
func (db *DB) Insert(name string, rows []Row) error { return db.eng.Insert(name, rows) }

// Reorganize re-renders the table under its current (or pending) layout.
func (db *DB) Reorganize(name string) error { return db.eng.Reorganize(name) }

// Compact folds accumulated tail batches into the table's run hierarchy and
// cascades level merges per the layout's compaction policy (sizetiered[k]
// or leveled[k] in the layout expression). Each merge folds one level into
// the next — O(level) work — instead of rewriting the whole table. For
// layouts without a compaction policy, Compact behaves like Reorganize.
// The background merge worker (Options.AutoMergeTails) calls this
// automatically when a policy table accumulates fanout tail batches.
func (db *DB) Compact(name string) error { return db.eng.Compact(name) }

// CompactStats reports fold work done since open: merge count, rows and
// payload bytes written into rendered runs (per-merge write amplification).
type CompactStats = table.CompactStats

// CompactionStats returns a snapshot of the engine's fold counters.
func (db *DB) CompactionStats() CompactStats { return db.eng.CompactStats() }

// AlterLayout switches the table to a new layout expression. With
// eager=true the data is rewritten immediately; otherwise lazily on next
// access (paper §5's reorganization strategies).
func (db *DB) AlterLayout(name, layout string, eager bool) error {
	mode := table.ReorgLazy
	if eager {
		mode = table.ReorgEager
	}
	return db.eng.AlterLayout(name, layout, mode)
}

// Query describes a scan: optional projection, filter and order
// (the paper's scan(table, [fieldlist, predicate, order])).
type Query struct {
	// Fields projects the output; nil selects every stored field.
	Fields []string
	// Where is a conjunctive range predicate, e.g.
	// `lat >= 42.3 and lat < 42.4 and id = "car-7"`.
	Where string
	// OrderBy requests a sort order, e.g. "t" or "lat desc, lon".
	// Orders matching the stored order stream; others re-sort.
	OrderBy string
	// Parallel fans block fetch/decode out over a bounded worker pool.
	// Results are identical to a serial scan (stored order is preserved);
	// only the wall-clock changes.
	Parallel bool
	// Workers bounds the parallel worker pool (0 = GOMAXPROCS). Ignored
	// unless Parallel is set.
	Workers int
	// Quarantine degrades gracefully on damaged data: extents that cannot
	// be read (transient errors are retried first) are skipped instead of
	// failing the scan, and Cursor.Report lists what was skipped. Off by
	// default — an unreadable extent fails the scan with a typed corruption
	// error.
	Quarantine bool
	// Coalesce fetches runs of physically adjacent blocks with one large
	// positional read instead of one read per page, and routes the run
	// through the buffer pool's scan-resistant bypass lane (scan pages are
	// not cached unless re-referenced). Results are identical; only the
	// I/O pattern changes. Off by default.
	Coalesce bool
	// Prefetch additionally overlaps I/O with decode: the next run is
	// fetched in the background while the current one is consumed. Implies
	// Coalesce. Off by default.
	Prefetch bool
	// Aggregate turns the scan into an aggregation: the cursor yields one
	// row per group (one row total without GroupBy) instead of matching
	// rows, computed with the vectorized kernels — no input row is ever
	// materialized. Mutually exclusive with Fields and OrderBy (groups come
	// sorted by key). Results are bit-identical across serial and parallel
	// executors, floats included.
	Aggregate *AggregateSpec
}

// AggregateSpec describes a pushed-down aggregation.
type AggregateSpec struct {
	// GroupBy lists stored columns to group on (empty = one global group).
	GroupBy []string
	// Aggs are the aggregate outputs: "count" or "count(*)", and
	// sum/min/max/avg over an arithmetic expression of numeric columns,
	// e.g. "sum(qty * price)", "avg(lat)", "min(a - b) as closest".
	// count(expr) counts non-null expression values; sum/min/max/avg skip
	// nulls and return null when no non-null input exists.
	Aggs []string
}

func (q Query) toOptions() (table.ScanOptions, error) {
	var opts table.ScanOptions
	opts.Fields = q.Fields
	opts.Parallel = q.Parallel
	opts.Workers = q.Workers
	opts.Quarantine = q.Quarantine
	opts.Coalesce = q.Coalesce
	opts.Prefetch = q.Prefetch
	if strings.TrimSpace(q.Where) != "" {
		pred, err := algebra.ParsePredicate(q.Where)
		if err != nil {
			return opts, err
		}
		opts.Pred = pred
	}
	if strings.TrimSpace(q.OrderBy) != "" {
		keys, err := algebra.ParseOrderBy(q.OrderBy)
		if err != nil {
			return opts, err
		}
		opts.Order = keys
	}
	if q.Aggregate != nil {
		spec := &table.AggSpec{GroupBy: q.Aggregate.GroupBy}
		for _, s := range q.Aggregate.Aggs {
			item, err := table.ParseAggItem(s)
			if err != nil {
				return opts, err
			}
			spec.Items = append(spec.Items, item)
		}
		opts.Aggregate = spec
	}
	return opts, nil
}

// Cursor iterates scan results (the paper's next()).
type Cursor struct {
	inner *table.Cursor
}

// Next returns the next row; ok=false at the end.
func (c *Cursor) Next() (Row, bool, error) { return c.inner.Next() }

// NextBatch returns the next batch of rows as typed column vectors;
// ok=false at the end. Batch iteration skips the per-row boxing Next pays,
// which is the fast way to drain large scans. The returned batch is valid
// only until the next Next/NextBatch/Close call on this cursor — copy out
// anything that must survive. Mixing Next and NextBatch is allowed;
// NextBatch first returns whatever Next has not consumed of the current
// block.
func (c *Cursor) NextBatch() (*Batch, bool, error) { return c.inner.NextBatch() }

// Schema returns the cursor's output schema.
func (c *Cursor) Schema() []Field { return c.inner.Schema().Fields }

// ScanReport describes what a quarantined scan skipped; empty when the scan
// saw everything.
type ScanReport = table.ScanReport

// SkippedExtent is one quarantined extent in a ScanReport.
type SkippedExtent = table.SkippedExtent

// Report returns what a Quarantine scan has skipped so far — complete once
// the cursor is exhausted. Always empty without Query.Quarantine.
func (c *Cursor) Report() ScanReport { return c.inner.Report() }

// Close releases the cursor.
func (c *Cursor) Close() { c.inner.Close() }

// All drains the cursor into a slice.
func (c *Cursor) All() ([]Row, error) {
	var out []Row
	for {
		r, ok, err := c.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, r)
	}
}

// Scan opens a cursor over the table (paper §4.1 scan).
func (db *DB) Scan(name string, q Query) (*Cursor, error) {
	opts, err := q.toOptions()
	if err != nil {
		return nil, err
	}
	cur, err := db.eng.Scan(name, opts)
	if err != nil {
		return nil, err
	}
	return &Cursor{inner: cur}, nil
}

// GetElement positions a cursor at the element at index (paper §4.1):
// one index = position in stored order; for a gridded table, one index per
// grid dimension addresses a cell. Next continues in stored order.
func (db *DB) GetElement(name string, fields []string, index ...int64) (*Cursor, error) {
	cur, err := db.eng.GetElement(name, fields, index)
	if err != nil {
		return nil, err
	}
	return &Cursor{inner: cur}, nil
}

// CostEstimate is a predicted I/O footprint with its milliseconds estimate
// under the default device model (paper §4.1 scan_cost/getElement_cost).
type CostEstimate struct {
	Ms    float64
	Pages uint64
	Seeks uint64
	Rows  int64
}

func toCostEstimate(e cost.Estimate) CostEstimate {
	return CostEstimate{Ms: cost.DefaultModel().Ms(e), Pages: e.Pages, Seeks: e.Seeks, Rows: e.Rows}
}

// ScanCost estimates the cost of a scan without running it.
func (db *DB) ScanCost(name string, q Query) (CostEstimate, error) {
	opts, err := q.toOptions()
	if err != nil {
		return CostEstimate{}, err
	}
	est, err := db.eng.EstimateScan(name, opts)
	if err != nil {
		return CostEstimate{}, err
	}
	return toCostEstimate(est), nil
}

// GetElementCost estimates the cost of a getElement call.
func (db *DB) GetElementCost(name string, fields []string, index ...int64) (CostEstimate, error) {
	est, err := db.eng.EstimateGet(name, fields, index)
	if err != nil {
		return CostEstimate{}, err
	}
	return toCostEstimate(est), nil
}

// OrderList returns the sort orders the current organization serves
// efficiently (paper §4.1 order_list), formatted like OrderBy inputs;
// gridded tables additionally report their cell curve, e.g.
// "zorder(lat,lon)".
func (db *DB) OrderList(name string) ([]string, error) {
	orders, err := db.eng.OrderList(name)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, keys := range orders {
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k.String()
		}
		out = append(out, strings.Join(parts, ", "))
	}
	grid, err := db.eng.GridOrder(name)
	if err != nil {
		return nil, err
	}
	if grid != "" {
		out = append(out, grid)
	}
	return out, nil
}

// ValidateLayout checks a layout expression against a table's schema
// without applying it.
func (db *DB) ValidateLayout(name, layout string) error {
	tab, err := db.cat.Get(name)
	if err != nil {
		return err
	}
	_ = tab
	expr, err := algebra.Parse(layout)
	if err != nil {
		return err
	}
	base, err := algebra.BaseOf(expr)
	if err != nil {
		return err
	}
	if base != name {
		return fmt.Errorf("rodentstore: layout is for table %q, not %q", base, name)
	}
	schemas, err := db.cat.Schemas()
	if err != nil {
		return err
	}
	_, err = algebra.Infer(expr, schemas)
	return err
}

// CreateIndex builds a secondary B+tree index over a stored field (paper
// §1: RodentStore includes B+trees as supporting machinery). Indexes
// describe one rendering of the main segments: Reorganize, AlterLayout and
// Load drop them — rebuild afterwards. Tail-only Inserts do not drop them;
// IndexScan answers over both the indexed prefix and the unindexed tails.
func (db *DB) CreateIndex(table, field string) error { return db.eng.CreateIndex(table, field) }

// DropIndex removes a secondary index.
func (db *DB) DropIndex(table, field string) error { return db.eng.DropIndex(table, field) }

// Indexes lists a table's indexed fields.
func (db *DB) Indexes(table string) ([]string, error) { return db.eng.Indexes(table) }

// IndexScan answers a query through the secondary index on indexField: the
// predicate's bounds on that field drive a B+tree range lookup, and only the
// blocks holding matching rows are fetched. Other conjuncts are
// post-filtered.
func (db *DB) IndexScan(table string, q Query, indexField string) (*Cursor, error) {
	opts, err := q.toOptions()
	if err != nil {
		return nil, err
	}
	cur, err := db.eng.IndexScan(table, opts.Fields, opts.Pred, indexField)
	if err != nil {
		return nil, err
	}
	return &Cursor{inner: cur}, nil
}
