// Advisor: the storage design optimizer of the paper's §5 — give it a
// workload, get back the algebra expression minimizing estimated cost, and
// watch measured I/O agree with the prediction's ranking.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rodentstore"
	"rodentstore/internal/cartel"
)

func main() {
	path := filepath.Join(os.TempDir(), "advisor.rdnt")
	os.Remove(path)
	os.Remove(path + ".wal")
	db, err := rodentstore.Create(path, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	defer os.Remove(path)
	defer os.Remove(path + ".wal")

	if err := db.CreateTable("Traces", []rodentstore.Field{
		{Name: "t", Type: rodentstore.Int},
		{Name: "lat", Type: rodentstore.Float},
		{Name: "lon", Type: rodentstore.Float},
		{Name: "id", Type: rodentstore.String},
	}, "rows(Traces)"); err != nil {
		log.Fatal(err)
	}
	if err := db.Load("Traces", cartel.Generate(cartel.DefaultConfig(100_000))); err != nil {
		log.Fatal(err)
	}

	where := "lat >= 42.352 and lat < 42.364 and lon >= -71.099 and lon < -71.086"
	workloads := []struct {
		name    string
		queries []rodentstore.WorkloadQuery
	}{
		{"spatial dashboard (window queries on lat/lon)", []rodentstore.WorkloadQuery{
			{Fields: []string{"lat", "lon"}, Where: where, Weight: 100},
		}},
		{"fleet report (project one column, full scans)", []rodentstore.WorkloadQuery{
			{Fields: []string{"id"}, Weight: 100},
		}},
		{"time-range audits", []rodentstore.WorkloadQuery{
			{Where: "t >= 1000 and t < 2000", Weight: 100},
		}},
	}

	for _, w := range workloads {
		advice, err := db.Advise("Traces", w.queries)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workload: %s\n", w.name)
		fmt.Printf("  recommended: %s\n", advice.Layout)
		fmt.Printf("  estimated:   %.1f ms total\n", advice.EstimatedMs)
		fmt.Println("  runner-ups:")
		for _, c := range advice.Alternatives[1:4] {
			fmt.Printf("    %10.1f ms  %s\n", c.EstimatedMs, c.Layout)
		}

		// Apply and measure the first workload query for real.
		if err := db.AlterLayout("Traces", advice.Layout, true); err != nil {
			log.Fatal(err)
		}
		db.ResetIOStats()
		q := w.queries[0]
		cur, err := db.Scan("Traces", rodentstore.Query{Fields: q.Fields, Where: q.Where})
		if err != nil {
			log.Fatal(err)
		}
		rows, err := cur.All()
		if err != nil {
			log.Fatal(err)
		}
		s := db.IOStats()
		fmt.Printf("  measured:    %d pages, %d seeks, %d rows\n\n", s.PageReads, s.Seeks, len(rows))

		// Reset to the naive layout for the next round.
		if err := db.AlterLayout("Traces", "rows(Traces)", true); err != nil {
			log.Fatal(err)
		}
	}
}
