// Quickstart: create a database, declare a table with a storage-algebra
// layout, load rows, and query it through the paper's access-method API.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rodentstore"
)

func main() {
	path := filepath.Join(os.TempDir(), "quickstart.rdnt")
	os.Remove(path)
	os.Remove(path + ".wal")
	db, err := rodentstore.Create(path, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	defer os.Remove(path)
	defer os.Remove(path + ".wal")

	// A table of sales records; the layout clusters rows by zipcode and
	// orders them by year within each cluster, with the zipcode column
	// dictionary-compressed.
	err = db.CreateTable("Sales", []rodentstore.Field{
		{Name: "zipcode", Type: rodentstore.Int},
		{Name: "year", Type: rodentstore.Int},
		{Name: "amount", Type: rodentstore.Float},
		{Name: "product", Type: rodentstore.String},
	}, "rle[zipcode](groupby[zipcode](orderby[year](Sales)))")
	if err != nil {
		log.Fatal(err)
	}

	var rows []rodentstore.Row
	for year := 2005; year <= 2008; year++ {
		for _, zip := range []int64{2139, 2142, 10001} {
			for q := 0; q < 3; q++ {
				rows = append(rows, rodentstore.Row{
					rodentstore.IntValue(zip),
					rodentstore.IntValue(int64(year)),
					rodentstore.FloatValue(float64(100*q + year - 2000)),
					rodentstore.StringValue(fmt.Sprintf("widget-%d", q)),
				})
			}
		}
	}
	if err := db.Load("Sales", rows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows, layout: ", len(rows))
	layout, _ := db.LayoutOf("Sales")
	fmt.Println(layout)

	// scan with projection and predicate (paper §4.1).
	cur, err := db.Scan("Sales", rodentstore.Query{
		Fields: []string{"year", "amount"},
		Where:  "zipcode = 2139 and year >= 2007",
	})
	if err != nil {
		log.Fatal(err)
	}
	got, err := cur.All()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zipcode 2139 since 2007: %d rows\n", len(got))
	for _, r := range got[:3] {
		fmt.Printf("  year=%d amount=%.0f\n", r[0].Int(), r[1].Float())
	}

	// Cost estimation without running the query (paper §4.1 scan_cost).
	est, _ := db.ScanCost("Sales", rodentstore.Query{Where: "zipcode = 2139"})
	fmt.Printf("scan_cost(zipcode = 2139): %.3f ms, %d pages, %d seeks\n", est.Ms, est.Pages, est.Seeks)

	// order_list: which orders does this organization serve efficiently?
	orders, _ := db.OrderList("Sales")
	fmt.Println("order_list:", orders)

	// Change the physical design without touching the logical schema.
	if err := db.AlterLayout("Sales", "cols(Sales)", true); err != nil {
		log.Fatal(err)
	}
	fmt.Println("re-laid out as a column store; same queries still work:")
	cur2, _ := db.Scan("Sales", rodentstore.Query{Fields: []string{"amount"}})
	all, _ := cur2.All()
	sum := 0.0
	for _, r := range all {
		sum += r[0].Float()
	}
	fmt.Printf("sum(amount) over %d rows = %.0f\n", len(all), sum)
}
