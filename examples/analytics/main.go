// Analytics: the decomposition storage model (DSM) motivation from the
// paper's introduction — OLAP scans touching few columns of a wide fact
// table, compared across row, column, and hybrid (colgroup) layouts, plus
// the design optimizer recommending the layout for the workload.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"rodentstore"
)

const nRows = 40_000

func factFields() []rodentstore.Field {
	return []rodentstore.Field{
		{Name: "orderid", Type: rodentstore.Int},
		{Name: "day", Type: rodentstore.Int},
		{Name: "store", Type: rodentstore.Int},
		{Name: "customer", Type: rodentstore.Int},
		{Name: "product", Type: rodentstore.String},
		{Name: "quantity", Type: rodentstore.Int},
		{Name: "price", Type: rodentstore.Float},
		{Name: "discount", Type: rodentstore.Float},
	}
}

func factRows() []rodentstore.Row {
	r := rand.New(rand.NewSource(42))
	products := []string{"anvil", "rocket-skates", "earthquake-pills", "tornado-seeds", "dehydrated-boulders"}
	rows := make([]rodentstore.Row, nRows)
	for i := range rows {
		rows[i] = rodentstore.Row{
			rodentstore.IntValue(int64(i)),
			rodentstore.IntValue(int64(r.Intn(365))),
			rodentstore.IntValue(int64(r.Intn(50))),
			rodentstore.IntValue(int64(r.Intn(5000))),
			rodentstore.StringValue(products[r.Intn(len(products))]),
			rodentstore.IntValue(int64(1 + r.Intn(10))),
			rodentstore.FloatValue(float64(r.Intn(10000)) / 100),
			rodentstore.FloatValue(float64(r.Intn(30)) / 100),
		}
	}
	return rows
}

func measure(db *rodentstore.DB, layout string) {
	if err := db.AlterLayout("Sales", layout, true); err != nil {
		log.Fatal(err)
	}
	db.ResetIOStats()
	// The motivating OLAP query: total revenue per day — reads 3 of 8 cols.
	cur, err := db.Scan("Sales", rodentstore.Query{Fields: []string{"day", "quantity", "price"}})
	if err != nil {
		log.Fatal(err)
	}
	revenue := make(map[int64]float64)
	for {
		r, ok, err := cur.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		revenue[r[0].Int()] += float64(r[1].Int()) * r[2].Float()
	}
	s := db.IOStats()
	fmt.Printf("  %6d pages  %3d seeks  <- %s\n", s.PageReads, s.Seeks, layout)
}

func main() {
	path := filepath.Join(os.TempDir(), "analytics.rdnt")
	os.Remove(path)
	os.Remove(path + ".wal")
	db, err := rodentstore.Create(path, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	defer os.Remove(path)
	defer os.Remove(path + ".wal")

	if err := db.CreateTable("Sales", factFields(), "rows(Sales)"); err != nil {
		log.Fatal(err)
	}
	if err := db.Load("Sales", factRows()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fact table: %d rows x %d columns\n", nRows, len(factFields()))
	fmt.Println("\nOLAP scan (day, quantity, price) under different layouts:")

	measure(db, "rows(Sales)")
	measure(db, "cols(Sales)")
	measure(db, "colgroup[day,quantity,price](Sales)")
	measure(db, "dict[product](colgroup[day,quantity,price](Sales))")

	// Ask the optimizer what it would choose for this workload.
	fmt.Println("\nstorage design optimizer (paper §5):")
	advice, err := db.Advise("Sales", []rodentstore.WorkloadQuery{
		{Fields: []string{"day", "quantity", "price"}, Weight: 100}, // hourly dashboards
		{Fields: nil, Weight: 1},                                    // rare full exports
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recommended: %s\n", advice.Layout)
	measure(db, advice.Layout)
}
