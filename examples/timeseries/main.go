// Timeseries: nested structures and data reduction for sensor series —
// the paper's fold transform groups each sensor's readings into a nested
// list (§3.5.2), and delta compression shrinks the slowly-varying values
// ("it is more efficient to store these small increments").
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"rodentstore"
)

func main() {
	path := filepath.Join(os.TempDir(), "timeseries.rdnt")
	os.Remove(path)
	os.Remove(path + ".wal")
	db, err := rodentstore.Create(path, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	defer os.Remove(path)
	defer os.Remove(path + ".wal")

	fields := []rodentstore.Field{
		{Name: "sensor", Type: rodentstore.Int},
		{Name: "ts", Type: rodentstore.Int},
		{Name: "temp", Type: rodentstore.Float},
	}

	// 20 sensors, a day of minutely readings each; temperatures drift
	// slowly (ideal for delta compression).
	r := rand.New(rand.NewSource(7))
	var rows []rodentstore.Row
	for s := 0; s < 20; s++ {
		temp := 15.0 + r.Float64()*10
		for m := 0; m < 1440; m++ {
			temp += (r.Float64() - 0.5) * 0.05
			temp += 3 * math.Sin(float64(m)/1440*2*math.Pi) / 1440 // diurnal drift
			rows = append(rows, rodentstore.Row{
				rodentstore.IntValue(int64(s)),
				rodentstore.IntValue(int64(m * 60)),
				rodentstore.FloatValue(temp),
			})
		}
	}

	sizeUnder := func(layout string) uint64 {
		name := fmt.Sprintf("db-%d.rdnt", len(layout))
		p := filepath.Join(os.TempDir(), name)
		os.Remove(p)
		os.Remove(p + ".wal")
		defer os.Remove(p)
		defer os.Remove(p + ".wal")
		d, err := rodentstore.Create(p, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		if err := d.CreateTable("Readings", fields, layout); err != nil {
			log.Fatal(err)
		}
		if err := d.Load("Readings", rows); err != nil {
			log.Fatal(err)
		}
		fi, err := os.Stat(p)
		if err != nil {
			log.Fatal(err)
		}
		return uint64(fi.Size())
	}

	fmt.Printf("%d readings from 20 sensors\n\n", len(rows))
	fmt.Println("database size under different layouts:")
	for _, layout := range []string{
		"rows(Readings)",
		"orderby[ts](groupby[sensor](Readings))",
		"delta[ts,temp](orderby[ts](groupby[sensor](Readings)))",
		"delta[ts,temp](bitpack[sensor](orderby[ts](groupby[sensor](Readings))))",
	} {
		fmt.Printf("  %8d bytes  <- %s\n", sizeUnder(layout), layout)
	}

	// fold: nest each sensor's readings under the sensor id (paper §3.5.2).
	if err := db.CreateTable("Readings", fields, "fold[ts,temp; sensor](Readings)"); err != nil {
		log.Fatal(err)
	}
	if err := db.Load("Readings", rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfolded layout: one row per sensor, readings nested")
	cur, err := db.Scan("Readings", rodentstore.Query{})
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for {
		row, ok, err := cur.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		if n < 3 {
			series := row[1].List()
			first := series[0].List()
			fmt.Printf("  sensor %d: %d readings, first (ts=%d temp=%.2f)\n",
				row[0].Int(), len(series), first[0].Int(), first[1].Float())
		}
		n++
	}
	fmt.Printf("(%d sensors)\n", n)
}
