// Geospatial: the paper's §6 case study end to end — CarTel-style GPS
// traces stored under the five physical designs N1..N4 plus an R-tree
// comparison, measuring pages read per spatial window query (a miniature
// Figure 2; run cmd/rsbench -exp fig2 for the full experiment).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rodentstore"
	"rodentstore/internal/bench"
	"rodentstore/internal/cartel"
)

func main() {
	// Mini Figure 2 through the experiment harness.
	dir, err := os.MkdirTemp("", "rodent-geo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := bench.DefaultConfig(dir)
	cfg.N = 100_000
	cfg.Queries = 20
	fmt.Printf("CarTel case study: %d observations, %d queries covering 1%% of greater Boston\n\n", cfg.N, cfg.Queries)
	results, err := bench.Figure2(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-26s %12s %12s %10s\n", "layout", "pages/query", "seeks/query", "ms/query")
	for _, r := range results {
		fmt.Printf("%-26s %12.0f %12.0f %10.2f\n", r.Name, r.PagesQuery, r.SeeksQuery, r.MsQuery)
	}

	// The same layouts through the public API, showing how a DBA would
	// actually evolve a live table's physical design.
	fmt.Println("\nEvolving one table through the designs with AlterLayout:")
	path := filepath.Join(dir, "traces.rdnt")
	db, err := rodentstore.Create(path, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.CreateTable("Traces", []rodentstore.Field{
		{Name: "t", Type: rodentstore.Int},
		{Name: "lat", Type: rodentstore.Float},
		{Name: "lon", Type: rodentstore.Float},
		{Name: "id", Type: rodentstore.String},
	}, "rows(Traces)"); err != nil {
		log.Fatal(err)
	}
	if err := db.Load("Traces", cartel.Generate(cartel.DefaultConfig(50_000))); err != nil {
		log.Fatal(err)
	}

	where := "lat >= 42.352 and lat < 42.364 and lon >= -71.099 and lon < -71.086"
	measure := func(layout string) {
		if err := db.AlterLayout("Traces", layout, true); err != nil {
			log.Fatal(err)
		}
		db.ResetIOStats()
		cur, err := db.Scan("Traces", rodentstore.Query{Fields: []string{"lat", "lon"}, Where: where})
		if err != nil {
			log.Fatal(err)
		}
		rows, err := cur.All()
		if err != nil {
			log.Fatal(err)
		}
		s := db.IOStats()
		fmt.Printf("  %4d pages %3d seeks %6d rows  <- %s\n", s.PageReads, s.Seeks, len(rows), layout)
	}
	measure("rows(Traces)")
	measure("project[lat,lon](groupby[id](orderby[t](Traces)))")

	// The projected layout physically dropped t and id — a further
	// re-layout that orders by t cannot be derived from what is stored.
	// RodentStore reports this instead of silently corrupting data:
	err = db.AlterLayout("Traces", "zorder(grid[lat,lon; 64,64](project[lat,lon](groupby[id](orderby[t](Traces)))))", true)
	fmt.Printf("  re-layout needing dropped fields: %v\n", err)

	// Reload the full-width data to continue evolving the design (each
	// projected layout drops columns, so later pipelines that reference
	// them need the original data again).
	reload := func() {
		if err := db.DropTable("Traces"); err != nil {
			log.Fatal(err)
		}
		if err := db.CreateTable("Traces", []rodentstore.Field{
			{Name: "t", Type: rodentstore.Int},
			{Name: "lat", Type: rodentstore.Float},
			{Name: "lon", Type: rodentstore.Float},
			{Name: "id", Type: rodentstore.String},
		}, "rows(Traces)"); err != nil {
			log.Fatal(err)
		}
		if err := db.Load("Traces", cartel.Generate(cartel.DefaultConfig(50_000))); err != nil {
			log.Fatal(err)
		}
	}
	reload()
	measure("zorder(grid[lat,lon; 64,64](project[lat,lon](groupby[id](orderby[t](Traces)))))")
	reload()
	measure("delta[lat,lon](zorder(grid[lat,lon; 64,64](project[lat,lon](groupby[id](orderby[t](Traces))))))")
}
