// RDF: the paper's conclusion points at "unusual storage schemes — such as
// attribute-dependent layouts for RDF data" (citing Abadi et al.'s vertical
// partitioning for the Semantic Web). This example stores a triple table
// (subject, predicate, object) and compares the canonical triple-store
// layout against predicate-partitioned layouts expressed in the algebra.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"rodentstore"
)

var predicates = []string{"type", "name", "author", "cites", "year"}

func tripleRows(n int) []rodentstore.Row {
	r := rand.New(rand.NewSource(11))
	rows := make([]rodentstore.Row, n)
	for i := range rows {
		p := predicates[r.Intn(len(predicates))]
		rows[i] = rodentstore.Row{
			rodentstore.IntValue(int64(r.Intn(n / 4))),
			rodentstore.StringValue(p),
			rodentstore.StringValue(fmt.Sprintf("%s-val-%d", p, r.Intn(1000))),
		}
	}
	return rows
}

func measure(db *rodentstore.DB, layout, what, where string, fields []string) {
	if err := db.AlterLayout("Triples", layout, true); err != nil {
		log.Fatal(err)
	}
	db.ResetIOStats()
	cur, err := db.Scan("Triples", rodentstore.Query{Fields: fields, Where: where})
	if err != nil {
		log.Fatal(err)
	}
	rows, err := cur.All()
	if err != nil {
		log.Fatal(err)
	}
	s := db.IOStats()
	fmt.Printf("  %-18s %5d pages  %5d rows   %s\n", what, s.PageReads, len(rows), layout)
}

func main() {
	path := filepath.Join(os.TempDir(), "rdf.rdnt")
	os.Remove(path)
	os.Remove(path + ".wal")
	db, err := rodentstore.Create(path, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	defer os.Remove(path)
	defer os.Remove(path + ".wal")

	if err := db.CreateTable("Triples", []rodentstore.Field{
		{Name: "subject", Type: rodentstore.Int},
		{Name: "predicate", Type: rodentstore.String},
		{Name: "object", Type: rodentstore.String},
	}, "rows(Triples)"); err != nil {
		log.Fatal(err)
	}
	if err := db.Load("Triples", tripleRows(50_000)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("50,000 RDF triples; query: all (subject, object) of predicate 'author'")
	fmt.Println()

	where := `predicate = "author"`
	fields := []string{"subject", "object"}

	// Canonical triple store: scan everything.
	measure(db, "rows(Triples)", "triple store", where, fields)

	// Predicate-clustered: groupby predicate makes each predicate's rows
	// contiguous; zone maps cannot prune strings, but dictionary-compressed
	// predicate columns shrink the scan.
	measure(db, "dict[predicate](groupby[predicate](orderby[subject](Triples)))",
		"clustered + dict", where, fields)

	// Attribute-dependent vertical partitioning: the predicate column is
	// isolated so scans of (subject, object) skip it entirely; combined
	// with clustering this approximates one-table-per-predicate without
	// changing the logical schema.
	measure(db, "dict[predicate](colgroup[predicate](groupby[predicate](orderby[subject](Triples))))",
		"vertical partition", where, fields)

	// Select-partitioned layout: store only the hot predicate's rows in
	// this representation (the paper's horizontal partition / isolation
	// dimension). Queries over other predicates would use other partitions.
	measure(db, `select[predicate = "author"](orderby[subject](Triples))`,
		"hot partition", where, fields)
}
