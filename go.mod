module rodentstore

go 1.24
