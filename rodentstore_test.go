package rodentstore_test

import (
	"path/filepath"
	"strings"
	"testing"

	"rodentstore"
	"rodentstore/internal/cartel"
	"rodentstore/internal/value"
)

func newDB(t *testing.T, opts *rodentstore.Options) *rodentstore.DB {
	t.Helper()
	db, err := rodentstore.Create(filepath.Join(t.TempDir(), "test.rdnt"), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func tracesFields() []rodentstore.Field {
	return []rodentstore.Field{
		{Name: "t", Type: rodentstore.Int},
		{Name: "lat", Type: rodentstore.Float},
		{Name: "lon", Type: rodentstore.Float},
		{Name: "id", Type: rodentstore.String},
	}
}

func loadTraces(t *testing.T, db *rodentstore.DB, layout string, n int) []rodentstore.Row {
	t.Helper()
	if err := db.CreateTable("Traces", tracesFields(), layout); err != nil {
		t.Fatal(err)
	}
	rows := cartel.Generate(cartel.DefaultConfig(n))
	if err := db.Load("Traces", rows); err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestEndToEndQuickstart(t *testing.T) {
	db := newDB(t, nil)
	rows := loadTraces(t, db, "rows(Traces)", 1000)

	if got := db.Tables(); len(got) != 1 || got[0] != "Traces" {
		t.Errorf("tables: %v", got)
	}
	if n, _ := db.RowCount("Traces"); n != 1000 {
		t.Errorf("rows: %d", n)
	}
	if l, _ := db.LayoutOf("Traces"); l != "rows(Traces)" {
		t.Errorf("layout: %s", l)
	}
	fields, err := db.SchemaOf("Traces")
	if err != nil || len(fields) != 4 {
		t.Errorf("schema: %v %v", fields, err)
	}

	cur, err := db.Scan("Traces", rodentstore.Query{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Errorf("scanned %d rows", len(got))
	}
}

func TestQueryWithWhereAndFields(t *testing.T) {
	db := newDB(t, nil)
	rows := loadTraces(t, db, "zorder(grid[lat,lon; 16,16](Traces))", 2000)

	where := "lat >= 42.355 and lat < 42.365 and lon >= -71.095 and lon < -71.085"
	cur, err := db.Scan("Traces", rodentstore.Query{Fields: []string{"lat", "lon"}, Where: where})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := cur.All()
	want := 0
	for _, r := range rows {
		lat, lon := r[1].Float(), r[2].Float()
		if lat >= 42.355 && lat < 42.365 && lon >= -71.095 && lon < -71.085 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("got %d rows, want %d", len(got), want)
	}
	if len(got) > 0 && len(got[0]) != 2 {
		t.Errorf("projection width: %d", len(got[0]))
	}
	// Bad predicates error cleanly.
	if _, err := db.Scan("Traces", rodentstore.Query{Where: "lat ~~ 3"}); err == nil {
		t.Error("bad where should fail")
	}
	if _, err := db.Scan("Traces", rodentstore.Query{OrderBy: "lat sideways"}); err == nil {
		t.Error("bad orderby should fail")
	}
}

func TestOrderByQuery(t *testing.T) {
	db := newDB(t, nil)
	loadTraces(t, db, "rows(Traces)", 500)
	cur, err := db.Scan("Traces", rodentstore.Query{OrderBy: "lat desc"})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := cur.All()
	for i := 1; i < len(got); i++ {
		if got[i][1].Float() > got[i-1][1].Float() {
			t.Fatal("not descending")
		}
	}
}

func TestAggregateQuery(t *testing.T) {
	db := newDB(t, nil)
	rows := loadTraces(t, db, "chunk[64](rows(Traces))", 2000)

	// Global count with a predicate.
	where := "lat >= 42.35"
	cur, err := db.Scan("Traces", rodentstore.Query{
		Where:     where,
		Aggregate: &rodentstore.AggregateSpec{Aggs: []string{"count"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range rows {
		if r[1].Float() >= 42.35 {
			want++
		}
	}
	if len(got) != 1 || got[0][0].Int() != int64(want) {
		t.Fatalf("count: got %v, want [[%d]]", got, want)
	}

	// Grouped sum over an expression, serial vs parallel bit-identical.
	spec := &rodentstore.AggregateSpec{
		GroupBy: []string{"id"},
		Aggs:    []string{"count", "sum(lat + lon) as span"},
	}
	serial, err := db.Scan("Traces", rodentstore.Query{Aggregate: spec})
	if err != nil {
		t.Fatal(err)
	}
	sRows, err := serial.All()
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[string]struct {
		n   int64
		sum float64
	}{}
	for _, r := range rows {
		acc := oracle[r[3].Str()]
		acc.n++
		acc.sum += r[1].Float() + r[2].Float()
		oracle[r[3].Str()] = acc
	}
	if len(sRows) != len(oracle) {
		t.Fatalf("groups: got %d, want %d", len(sRows), len(oracle))
	}
	for _, r := range sRows {
		acc, ok := oracle[r[0].Str()]
		if !ok {
			t.Fatalf("unexpected group %v", r[0])
		}
		if r[1].Int() != acc.n {
			t.Errorf("group %v count: got %d, want %d", r[0], r[1].Int(), acc.n)
		}
		if diff := r[2].Float() - acc.sum; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("group %v sum: got %v, want %v", r[0], r[2].Float(), acc.sum)
		}
	}
	parallel, err := db.Scan("Traces", rodentstore.Query{Aggregate: spec, Parallel: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pRows, err := parallel.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(pRows) != len(sRows) {
		t.Fatalf("parallel groups: got %d, want %d", len(pRows), len(sRows))
	}
	for i := range sRows {
		for j := range sRows[i] {
			if !value.Equal(sRows[i][j], pRows[i][j]) {
				t.Fatalf("row %d col %d: serial %v, parallel %v", i, j, sRows[i][j], pRows[i][j])
			}
		}
	}

	// Aggregate is mutually exclusive with Fields and OrderBy.
	if _, err := db.Scan("Traces", rodentstore.Query{
		Fields:    []string{"lat"},
		Aggregate: &rodentstore.AggregateSpec{Aggs: []string{"count"}},
	}); err == nil {
		t.Error("aggregate with fields should fail")
	}
	if _, err := db.Scan("Traces", rodentstore.Query{
		Aggregate: &rodentstore.AggregateSpec{Aggs: []string{"sum(nope)"}},
	}); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestGetElementAPI(t *testing.T) {
	db := newDB(t, nil)
	loadTraces(t, db, "orderby[t](Traces)", 500)
	// The element at position 100 must equal the 101st row of a full scan
	// in stored order.
	scan, _ := db.Scan("Traces", rodentstore.Query{})
	all, _ := scan.All()
	cur, err := db.GetElement("Traces", nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	r, ok, _ := cur.Next()
	if !ok || r[0].Int() != all[100][0].Int() || r[3].Str() != all[100][3].Str() {
		t.Errorf("element 100: got %v want %v", r, all[100])
	}
}

func TestCostAPIs(t *testing.T) {
	db := newDB(t, nil)
	loadTraces(t, db, "zorder(grid[lat,lon; 16,16](Traces))", 3000)
	full, err := db.ScanCost("Traces", rodentstore.Query{})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := db.ScanCost("Traces", rodentstore.Query{
		Where: "lat >= 42.359 and lat < 42.361 and lon >= -71.091 and lon < -71.089",
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Pages >= full.Pages || sel.Ms >= full.Ms {
		t.Errorf("selective scan should be cheaper: %+v vs %+v", sel, full)
	}
	g, err := db.GetElementCost("Traces", nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Pages == 0 || g.Pages > full.Pages {
		t.Errorf("getElement cost: %+v", g)
	}
}

func TestOrderListAPI(t *testing.T) {
	db := newDB(t, nil)
	loadTraces(t, db, "zorder(grid[lat,lon; 8,8](orderby[t](Traces)))", 200)
	orders, err := db.OrderList("Traces")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(orders, " | ")
	if !strings.Contains(joined, "zorder(lat,lon)") {
		t.Errorf("order list: %v", orders)
	}
}

func TestAlterLayoutAPI(t *testing.T) {
	db := newDB(t, nil)
	rows := loadTraces(t, db, "rows(Traces)", 400)
	if err := db.AlterLayout("Traces", "cols(Traces)", true); err != nil {
		t.Fatal(err)
	}
	if l, _ := db.LayoutOf("Traces"); l != "cols(Traces)" {
		t.Errorf("layout after alter: %s", l)
	}
	cur, _ := db.Scan("Traces", rodentstore.Query{})
	got, _ := cur.All()
	if len(got) != len(rows) {
		t.Errorf("rows after alter: %d", len(got))
	}
	if err := db.ValidateLayout("Traces", "project[bogus](Traces)"); err == nil {
		t.Error("invalid layout should fail validation")
	}
	if err := db.ValidateLayout("Traces", "rows(Other)"); err == nil {
		t.Error("wrong-table layout should fail validation")
	}
	if err := db.ValidateLayout("Traces", "delta[lat](rows(Traces))"); err != nil {
		t.Errorf("valid layout rejected: %v", err)
	}
}

func TestInsertReorganizeAPI(t *testing.T) {
	db := newDB(t, nil)
	loadTraces(t, db, "orderby[t](Traces)", 300)
	extra := cartel.Generate(cartel.Config{N: 50, Cars: 2, StepDeg: 7e-5, TripLen: 100, Seed: 9})
	if err := db.Insert("Traces", extra); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.RowCount("Traces"); n != 350 {
		t.Errorf("count: %d", n)
	}
	if err := db.Reorganize("Traces"); err != nil {
		t.Fatal(err)
	}
	cur, _ := db.Scan("Traces", rodentstore.Query{})
	got, _ := cur.All()
	if len(got) != 350 {
		t.Errorf("rows after reorganize: %d", len(got))
	}
}

func TestPersistenceAPI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.rdnt")
	db, err := rodentstore.Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable("Traces", tracesFields(), "delta[lat,lon](zorder(grid[lat,lon; 8,8](Traces)))")
	rows := cartel.Generate(cartel.DefaultConfig(500))
	db.Load("Traces", rows)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := rodentstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	cur, err := db2.Scan("Traces", rodentstore.Query{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := cur.All()
	if len(got) != len(rows) {
		t.Errorf("rows after reopen: %d", len(got))
	}
}

func TestOpenWithOptionsDurableInserts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "durable.rdnt")
	db, err := rodentstore.Create(path, &rodentstore.Options{DurableInserts: true})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable("Traces", tracesFields(), "rows(Traces)")
	rows := cartel.Generate(cartel.DefaultConfig(100))
	if err := db.Insert("Traces", rows[:50]); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening with the option keeps inserts durable across sessions.
	db2, err := rodentstore.OpenWithOptions(path, &rodentstore.Options{DurableInserts: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.Insert("Traces", rows[50:]); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	db3, err := rodentstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if n, _ := db3.RowCount("Traces"); n != 100 {
		t.Errorf("rows after reopen: %d, want 100", n)
	}
}

func TestBufferPoolOption(t *testing.T) {
	db := newDB(t, &rodentstore.Options{CachePages: 256})
	loadTraces(t, db, "rows(Traces)", 1000)
	// First scan cold, second warm: physical reads must not double.
	db.ResetIOStats()
	cur, _ := db.Scan("Traces", rodentstore.Query{})
	cur.All()
	cold := db.IOStats().PageReads
	cur2, _ := db.Scan("Traces", rodentstore.Query{})
	cur2.All()
	total := db.IOStats().PageReads
	if total >= cold*2 {
		t.Errorf("second scan not served from cache: cold=%d total=%d", cold, total)
	}
	if err := db.InvalidateCache(); err != nil {
		t.Fatal(err)
	}
	cur3, _ := db.Scan("Traces", rodentstore.Query{})
	cur3.All()
	if after := db.IOStats().PageReads; after <= total {
		t.Errorf("invalidated cache should hit disk again: %d -> %d", total, after)
	}
}

func TestAdviseAPI(t *testing.T) {
	db := newDB(t, nil)
	loadTraces(t, db, "rows(Traces)", 5000)
	advice, err := db.Advise("Traces", []rodentstore.WorkloadQuery{
		{
			Fields: []string{"lat", "lon"},
			Where:  "lat >= 42.35 and lat < 42.37 and lon >= -71.1 and lon < -71.08",
			Weight: 100,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if advice.Layout == "" || len(advice.Alternatives) < 5 {
		t.Fatalf("advice: %+v", advice)
	}
	// The advice must be applicable.
	if err := db.ValidateLayout("Traces", advice.Layout); err != nil {
		t.Errorf("advised layout invalid: %v", err)
	}
	if err := db.AlterLayout("Traces", advice.Layout, true); err != nil {
		t.Errorf("advised layout failed to apply: %v", err)
	}
	cur, _ := db.Scan("Traces", rodentstore.Query{Fields: []string{"lat"}})
	got, _ := cur.All()
	if len(got) != 5000 {
		t.Errorf("rows after applying advice: %d", len(got))
	}
	// Advising an empty workload or table errors.
	if _, err := db.Advise("Traces", nil); err == nil {
		t.Error("empty workload should fail")
	}
}

func TestFoldStrategyKnob(t *testing.T) {
	db := newDB(t, nil)
	if err := db.SetFoldStrategy("nestedloop"); err != nil {
		t.Fatal(err)
	}
	if err := db.SetFoldStrategy("hash"); err != nil {
		t.Fatal(err)
	}
	if err := db.SetFoldStrategy("quantum"); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestValueConstructors(t *testing.T) {
	r := rodentstore.Row{
		rodentstore.IntValue(1),
		rodentstore.FloatValue(2.5),
		rodentstore.StringValue("x"),
		rodentstore.BytesValue([]byte{1}),
		rodentstore.BoolValue(true),
		rodentstore.Null(),
	}
	if r[0].Int() != 1 || r[1].Float() != 2.5 || r[2].Str() != "x" || !r[4].Bool() || !r[5].IsNull() {
		t.Error("constructors broken")
	}
}

func TestIndexAPI(t *testing.T) {
	db := newDB(t, nil)
	loadTraces(t, db, "rows(Traces)", 2000)
	if err := db.CreateIndex("Traces", "t"); err != nil {
		t.Fatal(err)
	}
	if idx, _ := db.Indexes("Traces"); len(idx) != 1 {
		t.Fatalf("indexes: %v", idx)
	}
	cur, err := db.IndexScan("Traces", rodentstore.Query{Where: "t >= 50 and t < 60"}, "t")
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := cur.All()
	if len(rows) == 0 {
		t.Fatal("no rows from index scan")
	}
	for _, r := range rows {
		if r[0].Int() < 50 || r[0].Int() >= 60 {
			t.Fatalf("row outside range: %v", r)
		}
	}
	// Compare against a plain scan: identical result multiset size.
	cur2, _ := db.Scan("Traces", rodentstore.Query{Where: "t >= 50 and t < 60"})
	plain, _ := cur2.All()
	if len(plain) != len(rows) {
		t.Errorf("index scan %d rows, plain scan %d", len(rows), len(plain))
	}
	if err := db.DropIndex("Traces", "t"); err != nil {
		t.Fatal(err)
	}
}
