package rodentstore

// End-to-end corruption tests: deliberately damage an extent on the fault
// FS, then verify the three degradation layers — a plain scan fails with a
// typed, extent-addressed error; a Quarantine scan skips exactly the damaged
// extent and reports it; CheckIntegrity names it.

import (
	"errors"
	"fmt"
	"testing"

	"rodentstore/internal/pager"
	"rodentstore/internal/segment"
	"rodentstore/internal/vfs"
)

const faultDBPath = "fault.rdnt"

func faultDB(t *testing.T, fs *vfs.Fault) *DB {
	t.Helper()
	db, err := Create(faultDBPath, &Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.CreateTable("T", []Field{
		{Name: "id", Type: Int},
		{Name: "p", Type: String},
	}, "rows(T)"); err != nil {
		t.Fatal(err)
	}
	return db
}

func loadRows(t *testing.T, db *DB, n int) {
	t.Helper()
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{IntValue(int64(i)), StringValue(fmt.Sprintf("p-%d", i))}
	}
	if err := db.Load("T", rows); err != nil {
		t.Fatal(err)
	}
}

// corruptTailExtent flips bytes inside the first tail batch's extent and
// returns it. Tails keep the main rendering intact, so the scan has healthy
// extents on both sides of the damage.
func corruptTailExtent(t *testing.T, db *DB, fs *vfs.Fault) pager.Extent {
	t.Helper()
	if err := db.Insert("T", []Row{
		{IntValue(10_000), StringValue("tail-a")},
		{IntValue(10_001), StringValue("tail-b")},
	}); err != nil {
		t.Fatal(err)
	}
	tab, err := db.cat.Get("T")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Tails) == 0 || len(tab.Tails[0]) == 0 {
		t.Fatal("expected a tail batch")
	}
	meta := tab.Tails[0][0].Meta
	ext := pager.Extent{Start: meta.ExtentStart, Count: meta.ExtentPages}
	off := int64(ext.Start) * int64(db.PageSize())
	if n := fs.Corrupt(faultDBPath, off+32, 64); n != 64 {
		t.Fatalf("corrupted %d bytes, want 64", n)
	}
	return ext
}

func TestScanFailsTypedOnCorruptExtent(t *testing.T) {
	fs := vfs.NewFault(7)
	db := faultDB(t, fs)
	loadRows(t, db, 200)
	ext := corruptTailExtent(t, db, fs)

	cur, err := db.Scan("T", Query{})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	_, err = cur.All()
	if err == nil {
		t.Fatal("scan over corrupt extent succeeded")
	}
	var ce *segment.ErrCorruptExtent
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not ErrCorruptExtent", err)
	}
	if ce.Start != ext.Start {
		t.Fatalf("error names extent %d, corrupted %d", ce.Start, ext.Start)
	}
}

func TestQuarantineSkipsCorruptExtent(t *testing.T) {
	fs := vfs.NewFault(7)
	db := faultDB(t, fs)
	loadRows(t, db, 200)
	ext := corruptTailExtent(t, db, fs)

	for _, parallel := range []bool{false, true} {
		cur, err := db.Scan("T", Query{Quarantine: true, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		rows, err := cur.All()
		if err != nil {
			t.Fatalf("parallel=%v: quarantined scan failed: %v", parallel, err)
		}
		if len(rows) != 200 {
			t.Fatalf("parallel=%v: got %d rows, want the 200 healthy ones", parallel, len(rows))
		}
		rep := cur.Report()
		if len(rep.Skipped) != 1 {
			t.Fatalf("parallel=%v: report lists %d extents, want 1", parallel, len(rep.Skipped))
		}
		sk := rep.Skipped[0]
		if sk.Extent.Start != ext.Start {
			t.Fatalf("parallel=%v: skipped extent %d, corrupted %d", parallel, sk.Extent.Start, ext.Start)
		}
		if sk.Rows != 2 {
			t.Fatalf("parallel=%v: skipped %d rows, corrupted batch had 2", parallel, sk.Rows)
		}
		if sk.Err == nil {
			t.Fatalf("parallel=%v: skipped extent carries no error", parallel)
		}
		cur.Close()
	}
}

func TestCheckIntegrityReportsCorruptExtent(t *testing.T) {
	fs := vfs.NewFault(7)
	db := faultDB(t, fs)
	loadRows(t, db, 200)

	rep, err := db.CheckIntegrity()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean store reports issues: %v", rep.Issues)
	}
	if rep.Tables != 1 || rep.Blocks == 0 {
		t.Fatalf("walk covered %d tables, %d blocks", rep.Tables, rep.Blocks)
	}

	ext := corruptTailExtent(t, db, fs)
	rep, err = db.CheckIntegrity()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("corrupt store reports no issues")
	}
	found := false
	for _, issue := range rep.Issues {
		if issue.Extent.Start == ext.Start {
			found = true
			var ce *segment.ErrCorruptExtent
			if !errors.As(issue.Err, &ce) {
				t.Fatalf("issue %v does not carry ErrCorruptExtent", issue)
			}
		}
	}
	if !found {
		t.Fatalf("no issue names extent %d: %v", ext.Start, rep.Issues)
	}
}

func TestQuarantineRetriesTransientErrors(t *testing.T) {
	fs := vfs.NewFault(7)
	db := faultDB(t, fs)
	loadRows(t, db, 200)

	// Fail the first read the scan issues: the block load errors once, the
	// quarantine retry succeeds, and the scan returns everything with an
	// empty report.
	failed := false
	fs.Inject = func(op vfs.Op) vfs.Decision {
		if op.Kind == vfs.OpRead && !failed {
			failed = true
			return vfs.ShortRead
		}
		return vfs.OK
	}
	defer func() { fs.Inject = nil }()

	cur, err := db.Scan("T", Query{Quarantine: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	rows, err := cur.All()
	if err != nil {
		t.Fatalf("scan with transient faults failed: %v", err)
	}
	if len(rows) != 200 {
		t.Fatalf("got %d rows, want 200", len(rows))
	}
	if rep := cur.Report(); len(rep.Skipped) != 0 {
		t.Fatalf("transient errors were quarantined: %v", rep.Skipped)
	}
}
