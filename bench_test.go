// Package-level benchmarks: one testing.B benchmark per experiment in
// DESIGN.md's index. Each benchmark reports pages/query (the paper's
// Figure 2 metric) and seeks/query as custom metrics alongside wall time.
//
// These run at laptop scale (b.N-independent fixed datasets, built once per
// benchmark); cmd/rsbench runs the same experiments at the paper's scale.
package rodentstore_test

import (
	"testing"

	"rodentstore/internal/bench"
)

func benchConfig(b *testing.B) bench.Config {
	b.Helper()
	cfg := bench.DefaultConfig(b.TempDir())
	cfg.N = 100_000
	cfg.Queries = 20
	return cfg
}

// report re-runs an experiment once per b.N and reports the figure metrics
// for the named variant.
func reportResults(b *testing.B, results []bench.Result, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range results {
		b.ReportMetric(r.PagesQuery, "pages/query:"+sanitize(r.Name))
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkFigure2 regenerates the paper's Figure 2 (avg pages/query for
// N1, N2, N3, N4 and the R-tree baseline).
func BenchmarkFigure2(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		results, err := bench.Figure2(cfg)
		reportResults(b, results, err)
	}
}

// BenchmarkCurveSeeks is Ext-1: z-order vs row-major vs Hilbert cell
// ordering (the N3 -> N3' step).
func BenchmarkCurveSeeks(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		results, err := bench.CurveSeeks(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(r.SeeksQuery, "seeks/query:"+sanitize(r.Name))
		}
	}
}

// BenchmarkGridCellSweep is Ext-2: pages/query across grid resolutions.
func BenchmarkGridCellSweep(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		results, err := bench.GridCellSweep(cfg, []int{16, 64, 256})
		reportResults(b, results, err)
	}
}

// BenchmarkPageSizeSweep is Ext-3: the N4 layout across page sizes.
func BenchmarkPageSizeSweep(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		results, err := bench.PageSizeSweep(cfg, []int{512, 1024, 4096})
		reportResults(b, results, err)
	}
}

// BenchmarkCodecs is Ext-4: codec ablation on the z-ordered grid.
func BenchmarkCodecs(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		results, err := bench.Codecs(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(float64(r.DataPages), "datapages:"+sanitize(r.Name))
		}
	}
}

// BenchmarkFoldRender is Ext-5: Algorithm 1 (nested loops) vs hash fold.
func BenchmarkFoldRender(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := bench.FoldRender([]int{20000}, 100)
		r := results[0]
		b.ReportMetric(r.NestedMs, "nestedloop_ms")
		b.ReportMetric(r.HashMs, "hash_ms")
	}
}

// BenchmarkRowVsColumn is Ext-6: the DSM motivation (1 of 8 columns).
func BenchmarkRowVsColumn(b *testing.B) {
	cfg := benchConfig(b)
	cfg.N = 40_000
	for i := 0; i < b.N; i++ {
		results, err := bench.RowVsColumn(cfg, 8)
		reportResults(b, results, err)
	}
}

// BenchmarkOptimizer is Ext-7: advised layout vs naive and hand-tuned.
func BenchmarkOptimizer(b *testing.B) {
	cfg := benchConfig(b)
	cfg.N = 60_000
	cfg.Queries = 10
	for i := 0; i < b.N; i++ {
		results, err := bench.AdvisorQuality(cfg)
		reportResults(b, results, err)
	}
}

// BenchmarkConcurrentThroughput is Ext-9: full-table-scan rows/sec at 1, 4
// and 16 goroutines (parallel scan workers and independent clients), hot
// and cold pool. Speedup metrics are relative to the 1-goroutine run of the
// same series; on multi-core hosts they show the concurrent read path
// scaling, on a single core they sit near 1.
func BenchmarkConcurrentThroughput(b *testing.B) {
	cfg := benchConfig(b)
	cfg.N = 60_000
	for i := 0; i < b.N; i++ {
		results, err := bench.ConcurrentThroughput(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(r.RowsPerSec, "rows/sec:"+sanitize(r.Name))
			if r.Goroutines > 1 {
				b.ReportMetric(r.Speedup, "speedup:"+sanitize(r.Name))
			}
		}
	}
}

// BenchmarkIngestThroughput is Ext-10: durable concurrent insert rows/sec
// at 1, 4 and 16 writer goroutines, with group commit and background tail
// merging each toggled. Speedups are relative to the 1-writer run of the
// same toggle setting; with group commit on they show fsync amortization
// (and, on multi-core hosts, the lock-free prepare phase) scaling ingest.
func BenchmarkIngestThroughput(b *testing.B) {
	cfg := benchConfig(b)
	cfg.N = 30_000
	for i := 0; i < b.N; i++ {
		results, err := bench.IngestThroughput(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(r.RowsPerSec, "rows/sec:"+sanitize(r.Name))
			if r.Writers > 1 {
				b.ReportMetric(r.Speedup, "speedup:"+sanitize(r.Name))
			}
		}
	}
}

// BenchmarkFilteredScan is Ext-11: filtered full-table-scan rows/sec,
// selectivity 0.1%..100%, vectorized batch executor vs the boxed
// row-at-a-time baseline. Speedups are vectorized over boxed at the same
// selectivity — this is the pure per-tuple CPU comparison (hot pool, no
// zone pruning), so unlike Ext-9/10 it is meaningful on a single core.
func BenchmarkFilteredScan(b *testing.B) {
	cfg := benchConfig(b)
	cfg.N = 200_000
	for i := 0; i < b.N; i++ {
		results, err := bench.FilteredScan(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(r.RowsPerSec, "rows/sec:"+sanitize(r.Name))
			if r.Vectorized {
				b.ReportMetric(r.Speedup, "speedup:"+sanitize(r.Name))
			}
		}
	}
}

// BenchmarkAggThroughput is Ext-13: pushed-down aggregation rows/sec —
// count, sum, hash group-by and expression aggregates at 1% and 100%
// selectivity, vectorized kernels (serial and morsel-parallel) vs the
// boxed row-at-a-time oracle. Like Ext-11 it is a per-tuple CPU
// comparison, meaningful on a single core; the parallel rows additionally
// record GOMAXPROCS because their speedup is only meaningful beyond one
// processor.
func BenchmarkAggThroughput(b *testing.B) {
	cfg := benchConfig(b)
	cfg.N = 200_000
	for i := 0; i < b.N; i++ {
		results, err := bench.AggThroughput(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(r.RowsPerSec, "rows/sec:"+sanitize(r.Name))
			if r.Mode != "boxed" {
				b.ReportMetric(r.Speedup, "speedup:"+sanitize(r.Name))
			}
		}
	}
}

// BenchmarkReorg is Ext-8: query cost before/after reorganization.
func BenchmarkReorg(b *testing.B) {
	cfg := benchConfig(b)
	cfg.N = 60_000
	cfg.Queries = 10
	for i := 0; i < b.N; i++ {
		results, err := bench.Reorg(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(r.PagesQuery, "pages/query:"+sanitize(r.Name))
		}
	}
}
