// Command rsbench regenerates the paper's evaluation (Figure 2) and the
// extension experiments indexed in DESIGN.md.
//
// Usage:
//
//	rsbench -exp fig2 -n 1000000 -queries 200
//	rsbench -exp curve|cells|pagesize|codecs|fold|dsm|advisor|reorg|all
//
// The paper's full scale is -n 10000000 (10M observations, ~45 s generate +
// load per layout); the default 1,000,000 reproduces the same shape in
// seconds. Results print as aligned tables with the paper's reference
// numbers where applicable.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"rodentstore/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "fig2", "experiment: fig2|curve|cells|pagesize|codecs|fold|dsm|advisor|reorg|all")
		n        = flag.Int("n", 1_000_000, "number of observations (paper: 10000000)")
		queries  = flag.Int("queries", 200, "number of window queries (paper: 200)")
		area     = flag.Float64("area", 0.01, "query area fraction (paper: 0.01)")
		pageSize = flag.Int("pagesize", 1024, "page size in bytes (paper: 1 KB)")
		cells    = flag.Int("cells", 64, "grid cells per axis")
		dir      = flag.String("dir", os.TempDir(), "scratch directory")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := bench.Config{
		N: *n, Queries: *queries, AreaFraction: *area,
		PageSize: *pageSize, GridCells: *cells, Dir: *dir, Seed: *seed,
	}

	run := func(name string) error {
		switch name {
		case "fig2":
			return runFig2(cfg)
		case "curve":
			return runResults("Ext-1: cell-ordering curves (the N3 -> N3' step)", func() ([]bench.Result, error) {
				return bench.CurveSeeks(cfg)
			})
		case "cells":
			return runResults("Ext-2: grid cell-size sweep", func() ([]bench.Result, error) {
				return bench.GridCellSweep(cfg, []int{16, 32, 64, 128, 256})
			})
		case "pagesize":
			return runResults("Ext-3: page-size sweep (N4 layout)", func() ([]bench.Result, error) {
				return bench.PageSizeSweep(cfg, []int{512, 1024, 4096, 16384, 65536})
			})
		case "codecs":
			return runResults("Ext-4: codec ablation on the z-ordered grid", func() ([]bench.Result, error) {
				return bench.Codecs(cfg)
			})
		case "fold":
			return runFold()
		case "dsm":
			return runResults("Ext-6: row vs column vs hybrid (1 of 8 columns scanned)", func() ([]bench.Result, error) {
				return bench.RowVsColumn(cfg, 8)
			})
		case "advisor":
			return runResults("Ext-7: storage design optimizer vs hand-tuned layouts", func() ([]bench.Result, error) {
				return bench.AdvisorQuality(cfg)
			})
		case "reorg":
			return runReorg(cfg)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	var names []string
	if *exp == "all" {
		names = []string{"fig2", "curve", "cells", "pagesize", "codecs", "fold", "dsm", "advisor", "reorg"}
	} else {
		names = []string{*exp}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "rsbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func runFig2(cfg bench.Config) error {
	fmt.Printf("Figure 2: avg pages/query over %d observations, %d queries covering %.1f%% of area, %dB pages\n",
		cfg.N, cfg.Queries, cfg.AreaFraction*100, cfg.PageSize)
	results, err := bench.Figure2(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "layout\tpages/query\tseeks/query\tms/query\trows/query\tdata pages\tpaper(10M)")
	for _, r := range results {
		paper := ""
		if p, ok := bench.PaperFigure2[r.Name]; ok {
			paper = fmt.Sprintf("%.0f", p)
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.2f\t%.0f\t%d\t%s\n",
			r.Name, r.PagesQuery, r.SeeksQuery, r.MsQuery, r.RowsQuery, r.DataPages, paper)
	}
	return w.Flush()
}

func runResults(title string, fn func() ([]bench.Result, error)) error {
	fmt.Println(title)
	results, err := fn()
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\tpages/query\tseeks/query\tseek dist\tms/query\trows/query\tdata pages")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\t%.2f\t%.0f\t%d\n",
			r.Name, r.PagesQuery, r.SeeksQuery, r.SeekDist, r.MsQuery, r.RowsQuery, r.DataPages)
	}
	return w.Flush()
}

func runFold() error {
	fmt.Println("Ext-5: fold rendering — Algorithm 1 (nested loops) vs hash (paper §4.2)")
	results := bench.FoldRender([]int{1000, 5000, 20000, 50000}, 100)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rows\tgroups\tnested-loop ms\thash ms\tspeedup")
	for _, r := range results {
		fmt.Fprintf(w, "%d\t%d\t%.2f\t%.2f\t%.1fx\n", r.Rows, r.OutputRows, r.NestedMs, r.HashMs, r.Speedup)
	}
	return w.Flush()
}

func runReorg(cfg bench.Config) error {
	fmt.Println("Ext-8: reorganization strategies (paper §5)")
	results, err := bench.Reorg(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "state\tpages/query\treorg ms")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%.0f\t%.1f\n", r.Name, r.PagesQuery, r.ReorgMs)
	}
	return w.Flush()
}
