// Command rsbench regenerates the paper's evaluation (Figure 2) and the
// extension experiments indexed in DESIGN.md.
//
// Usage:
//
//	rsbench -exp fig2 -n 1000000 -queries 200
//	rsbench -exp curve|cells|pagesize|codecs|fold|dsm|advisor|reorg|throughput|all
//	rsbench -exp fig2 -json > BENCH_fig2.json
//
// The paper's full scale is -n 10000000 (10M observations, ~45 s generate +
// load per layout); the default 1,000,000 reproduces the same shape in
// seconds. Results print as aligned tables with the paper's reference
// numbers where applicable, or as a JSON object with -json (one key per
// experiment, plus the config) so benchmark trajectories can be recorded as
// BENCH_*.json files across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"

	"rodentstore/internal/bench"
)

var allExperiments = []string{"fig2", "curve", "cells", "pagesize", "codecs", "fold", "dsm", "advisor", "reorg", "throughput", "ingest", "filter", "agg", "scanio", "compact"}

func main() {
	var (
		exp      = flag.String("exp", "fig2", "experiment: fig2|curve|cells|pagesize|codecs|fold|dsm|advisor|reorg|throughput|ingest|filter|agg|scanio|compact|all")
		n        = flag.Int("n", 1_000_000, "number of observations (paper: 10000000)")
		queries  = flag.Int("queries", 200, "number of window queries (paper: 200)")
		area     = flag.Float64("area", 0.01, "query area fraction (paper: 0.01)")
		pageSize = flag.Int("pagesize", 1024, "page size in bytes (paper: 1 KB)")
		cells    = flag.Int("cells", 64, "grid cells per axis")
		dir      = flag.String("dir", os.TempDir(), "scratch directory")
		seed     = flag.Int64("seed", 1, "random seed")
		jsonOut  = flag.Bool("json", false, "emit results as one JSON object instead of tables")
		maxprocs = flag.Int("gomaxprocs", 0, "if > 0, set GOMAXPROCS before running (recorded in the -json header; on a single-core container values > 1 only add scheduler interleaving, not parallel speedup)")
	)
	flag.Parse()
	if *maxprocs > 0 {
		runtime.GOMAXPROCS(*maxprocs)
	}

	cfg := bench.Config{
		N: *n, Queries: *queries, AreaFraction: *area,
		PageSize: *pageSize, GridCells: *cells, Dir: *dir, Seed: *seed,
	}

	// run executes one experiment, returning its raw results for -json.
	run := func(name string) (any, error) {
		switch name {
		case "fig2":
			return bench.Figure2(cfg)
		case "curve":
			return bench.CurveSeeks(cfg)
		case "cells":
			return bench.GridCellSweep(cfg, []int{16, 32, 64, 128, 256})
		case "pagesize":
			return bench.PageSizeSweep(cfg, []int{512, 1024, 4096, 16384, 65536})
		case "codecs":
			return bench.Codecs(cfg)
		case "fold":
			return bench.FoldRender([]int{1000, 5000, 20000, 50000}, 100), nil
		case "dsm":
			return bench.RowVsColumn(cfg, 8)
		case "advisor":
			return bench.AdvisorQuality(cfg)
		case "reorg":
			return bench.Reorg(cfg)
		case "throughput":
			return bench.ConcurrentThroughput(cfg)
		case "ingest":
			return bench.IngestThroughput(cfg)
		case "filter":
			return bench.FilteredScan(cfg)
		case "agg":
			return bench.AggThroughput(cfg)
		case "scanio":
			return bench.ScanIO(cfg)
		case "compact":
			return bench.SustainedCompaction(cfg)
		default:
			return nil, fmt.Errorf("unknown experiment %q", name)
		}
	}

	var names []string
	if *exp == "all" {
		names = allExperiments
	} else {
		names = []string{*exp}
	}

	collected := make(map[string]any, len(names))
	for _, name := range names {
		if !*jsonOut {
			// The title doubles as a progress marker: experiments can run
			// for minutes at paper scale.
			fmt.Println(title(cfg, name))
		}
		data, err := run(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rsbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		collected[name] = data
		if !*jsonOut {
			if err := print(name, data); err != nil {
				fmt.Fprintf(os.Stderr, "rsbench: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		// Parallel speedups are meaningless without knowing the processor
		// budget of the machine that produced the file, so every BENCH_*.json
		// records it.
		payload := map[string]any{
			"config": cfg,
			"runtime": map[string]any{
				"gomaxprocs": runtime.GOMAXPROCS(0),
				"numcpu":     runtime.NumCPU(),
			},
			"experiments": collected,
		}
		if err := enc.Encode(payload); err != nil {
			fmt.Fprintf(os.Stderr, "rsbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// title describes one experiment; printed before it runs as a progress
// marker.
func title(cfg bench.Config, name string) string {
	switch name {
	case "fig2":
		return fmt.Sprintf("Figure 2: avg pages/query over %d observations, %d queries covering %.1f%% of area, %dB pages",
			cfg.N, cfg.Queries, cfg.AreaFraction*100, cfg.PageSize)
	case "curve":
		return "Ext-1: cell-ordering curves (the N3 -> N3' step)"
	case "cells":
		return "Ext-2: grid cell-size sweep"
	case "pagesize":
		return "Ext-3: page-size sweep (N4 layout)"
	case "codecs":
		return "Ext-4: codec ablation on the z-ordered grid"
	case "fold":
		return "Ext-5: fold rendering — Algorithm 1 (nested loops) vs hash (paper §4.2)"
	case "dsm":
		return "Ext-6: row vs column vs hybrid (1 of 8 columns scanned)"
	case "advisor":
		return "Ext-7: storage design optimizer vs hand-tuned layouts"
	case "reorg":
		return "Ext-8: reorganization strategies (paper §5)"
	case "throughput":
		return "Ext-9: concurrent read throughput (sharded pool, lock-free pager, parallel scan)"
	case "ingest":
		return "Ext-10: concurrent ingest throughput (group-commit WAL, staged inserts, background merge)"
	case "filter":
		return "Ext-11: filtered-scan selectivity sweep (vectorized batches vs boxed rows)"
	case "agg":
		return "Ext-13: aggregation throughput (vectorized kernels + morsel scheduler vs boxed rows)"
	case "scanio":
		return "Ext-14: scan I/O pipeline (coalesced run reads + async prefetch + scan-resistant admission)"
	case "compact":
		return "Ext-15: sustained ingest under leveled compaction (incremental folds vs full rewrites)"
	}
	return name
}

// print renders one experiment's results as an aligned text table (the
// title has already been printed).
func print(name string, data any) error {
	switch name {
	case "fig2":
		return printFig2(data.([]bench.Result))
	case "curve", "cells", "pagesize", "codecs", "dsm", "advisor":
		return printResults(data.([]bench.Result))
	case "fold":
		return printFold(data.([]bench.FoldResult))
	case "reorg":
		return printReorg(data.([]bench.ReorgResult))
	case "throughput":
		return printThroughput(data.([]bench.ThroughputResult))
	case "ingest":
		return printIngest(data.([]bench.IngestResult))
	case "filter":
		return printFilter(data.([]bench.FilterResult))
	case "agg":
		return printAgg(data.([]bench.AggResult))
	case "scanio":
		return printScanIO(data.(*bench.ScanIOReport))
	case "compact":
		return printCompact(data.([]bench.CompactResult))
	}
	return fmt.Errorf("no printer for %q", name)
}

func printCompact(results []bench.CompactResult) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "run\tpolicy\tstage\ttable rows\tinsert rows/sec\tscan rows/sec\tmerges\tMB rewritten\tMB/merge")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.0f\t%.0f\t%d\t%.2f\t%.2f\n",
			r.Name, r.Policy, r.Stage, r.TableRows, r.InsertRowsPerSec, r.ScanRowsPerSec,
			r.Merges, float64(r.MergeBytes)/(1<<20), float64(r.BytesPerMerge)/(1<<20))
	}
	return w.Flush()
}

func printScanIO(rep *bench.ScanIOReport) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "table pages\t%d\tpool frames\t%d\tdevice\t%.0fus + %dMB/s per ReadAt\n",
		rep.TablePages, rep.PoolFrames, rep.DevLatencyUs, rep.DevMBps)
	if err := w.Flush(); err != nil {
		return err
	}
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "run\tpipeline\trows\tms\trows/sec\tReadAt ops\tMB read\tspeedup\top reduction\tbypassed\tadmitted")
	for _, r := range rep.ColdScan {
		fmt.Fprintf(w, "%s\t%s\t%d\t%.1f\t%.0f\t%d\t%.1f\t%.2fx\t%.1fx\t%d\t%d\n",
			r.Name, r.Pipeline, r.Rows, r.Ms, r.RowsPerSec, r.ReadOps,
			float64(r.ReadBytes)/(1<<20), r.Speedup, r.OpReduction,
			r.Pool.Bypassed, r.Pool.Admitted)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "run\tpipeline\tlookups\thits\tmisses\thit rate\tbaseline\tbypassed\tadmitted")
	for _, m := range rep.Mixed {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%.1f%%\t%.1f%%\t%d\t%d\n",
			m.Name, m.Pipeline, m.Lookups, m.LookupHits, m.LookupMisses,
			m.HitRate*100, m.BaselineHitRate*100, m.Bypassed, m.Admitted)
	}
	return w.Flush()
}

func printAgg(results []bench.AggResult) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "run\taggregate\tselectivity\tmode\tprocs\trows\tgroups\tms\trows/sec\tvs boxed\tvs serial")
	for _, r := range results {
		procs, parSpeed := "", ""
		if r.Mode == "parallel" {
			procs = fmt.Sprintf("%d", r.Gomaxprocs)
			parSpeed = fmt.Sprintf("%.2fx", r.ParallelSpeedup)
		}
		fmt.Fprintf(w, "%s\t%s\t%.0f%%\t%s\t%s\t%d\t%d\t%.1f\t%.0f\t%.2fx\t%s\n",
			r.Name, r.Agg, r.Selectivity*100, r.Mode, procs, r.Rows, r.Groups, r.Ms, r.RowsPerSec, r.Speedup, parSpeed)
	}
	return w.Flush()
}

func printFilter(results []bench.FilterResult) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "run\tselectivity\texecutor\trows\tmatched\tms\trows/sec\tspeedup")
	for _, r := range results {
		mode := "boxed"
		if r.Vectorized {
			mode = "vectorized"
		}
		fmt.Fprintf(w, "%s\t%.1f%%\t%s\t%d\t%d\t%.1f\t%.0f\t%.2fx\n",
			r.Name, r.Selectivity*100, mode, r.Rows, r.Matched, r.Ms, r.RowsPerSec, r.Speedup)
	}
	return w.Flush()
}

func printFig2(results []bench.Result) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "layout\tpages/query\tseeks/query\tms/query\trows/query\tdata pages\tpaper(10M)")
	for _, r := range results {
		paper := ""
		if p, ok := bench.PaperFigure2[r.Name]; ok {
			paper = fmt.Sprintf("%.0f", p)
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.2f\t%.0f\t%d\t%s\n",
			r.Name, r.PagesQuery, r.SeeksQuery, r.MsQuery, r.RowsQuery, r.DataPages, paper)
	}
	return w.Flush()
}

func printResults(results []bench.Result) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\tpages/query\tseeks/query\tseek dist\tms/query\trows/query\tdata pages")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\t%.2f\t%.0f\t%d\n",
			r.Name, r.PagesQuery, r.SeeksQuery, r.SeekDist, r.MsQuery, r.RowsQuery, r.DataPages)
	}
	return w.Flush()
}

func printFold(results []bench.FoldResult) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rows\tgroups\tnested-loop ms\thash ms\tspeedup")
	for _, r := range results {
		fmt.Fprintf(w, "%d\t%d\t%.2f\t%.2f\t%.1fx\n", r.Rows, r.OutputRows, r.NestedMs, r.HashMs, r.Speedup)
	}
	return w.Flush()
}

func printReorg(results []bench.ReorgResult) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "state\tpages/query\treorg ms")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%.0f\t%.1f\n", r.Name, r.PagesQuery, r.ReorgMs)
	}
	return w.Flush()
}

func printIngest(results []bench.IngestResult) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "run\twriters\tgroup commit\tmerge\trows\tms\trows/sec\tspeedup\tfinal tails")
	onOff := func(b bool) string {
		if b {
			return "on"
		}
		return "off"
	}
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%d\t%.1f\t%.0f\t%.2fx\t%d\n",
			r.Name, r.Writers, onOff(r.GroupCommit), onOff(r.AutoMerge),
			r.Rows, r.Ms, r.RowsPerSec, r.Speedup, r.FinalTails)
	}
	return w.Flush()
}

func printThroughput(results []bench.ThroughputResult) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "run\tmode\tgoroutines\tpool\trows\tms\trows/sec\tspeedup")
	for _, r := range results {
		temp := "cold"
		if r.Hot {
			temp = "hot"
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%d\t%.1f\t%.0f\t%.2fx\n",
			r.Name, r.Mode, r.Goroutines, temp, r.Rows, r.Ms, r.RowsPerSec, r.Speedup)
	}
	return w.Flush()
}
