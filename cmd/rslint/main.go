// Command rslint runs RodentStore's repo-specific static analyzers — the
// buffer-lease, batch-lifetime, lock-order, error-wrapping and
// deterministic-clock invariants — over the module's packages.
//
// Usage:
//
//	go run ./cmd/rslint ./...
//	go run ./cmd/rslint ./internal/table ./internal/buffer/...
//
// Exit status: 0 when clean, 1 when any finding is reported, 2 when a
// package fails to load or type-check. Findings suppressed by a
// //lint:allow annotation are counted on stderr but do not fail the run.
// Run it from anywhere inside the module.
package main

import (
	"flag"
	"fmt"
	"os"

	"rodentstore/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rslint [packages]\n\nAnalyzers:\n")
		for _, a := range lint.DefaultAnalyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	res, err := lint.Run(flag.Args(), lint.DefaultAnalyzers(), os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rslint:", err)
		os.Exit(2)
	}
	if res.Suppressed > 0 {
		fmt.Fprintf(os.Stderr, "rslint: %d finding(s) suppressed by //lint:allow\n", res.Suppressed)
	}
	if res.Findings > 0 {
		fmt.Fprintf(os.Stderr, "rslint: %d finding(s) in %d package(s)\n", res.Findings, res.Packages)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rslint: %d package(s) clean\n", res.Packages)
}
