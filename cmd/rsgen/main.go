// Command rsgen generates synthetic CarTel-style GPS trace data (the
// substitution for the paper's proprietary Boston taxi traces; see
// DESIGN.md) as CSV on stdout: t,lat,lon,id.
//
// Usage:
//
//	rsgen -n 1000000 -cars 200 -seed 7 > traces.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"rodentstore/internal/cartel"
)

func main() {
	var (
		n     = flag.Int("n", 100000, "number of observations")
		cars  = flag.Int("cars", 0, "fleet size (0 = n/5000)")
		seed  = flag.Int64("seed", 1, "random seed")
		strip = flag.Bool("no-header", false, "omit the CSV header row")
	)
	flag.Parse()

	cfg := cartel.DefaultConfig(*n)
	cfg.Seed = *seed
	if *cars > 0 {
		cfg.Cars = *cars
	}
	rows := cartel.Generate(cfg)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if !*strip {
		fmt.Fprintln(w, "t,lat,lon,id")
	}
	for _, r := range rows {
		w.WriteString(strconv.FormatInt(r[0].Int(), 10))
		w.WriteByte(',')
		w.WriteString(strconv.FormatFloat(r[1].Float(), 'f', -1, 64))
		w.WriteByte(',')
		w.WriteString(strconv.FormatFloat(r[2].Float(), 'f', -1, 64))
		w.WriteByte(',')
		w.WriteString(r[3].Str())
		w.WriteByte('\n')
	}
}
