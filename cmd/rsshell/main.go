// Command rsshell is a small interactive shell over a RodentStore database:
// create tables with declarative layouts, load CSV data, inspect layouts,
// run scans and cost estimates.
//
// Usage:
//
//	rsshell mydb.rdnt
//
// Commands (also shown by `help`):
//
//	create <table> (<field>:<type>, ...) layout <expr>
//	load <table> <file.csv>
//	insert <table> <csv values>
//	scan <table> [fields f1,f2] [where <pred>] [order <keys>] [limit n]
//	cost <table> [fields ...] [where ...]
//	layout <table> [<new expr> [lazy]]
//	advise <table> fields <f1,f2> [where <pred>]
//	orders <table> | tables | schema <table> | stats | reorg <table>
//	check | quit
package main

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"rodentstore"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: rsshell <db file>")
		os.Exit(1)
	}
	path := os.Args[1]
	var db *rodentstore.DB
	var err error
	if _, statErr := os.Stat(path); statErr == nil {
		db, err = rodentstore.Open(path)
	} else {
		db, err = rodentstore.Create(path, nil)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsshell:", err)
		os.Exit(1)
	}
	defer db.Close()

	fmt.Printf("RodentStore shell — %s (page size %d B). Type help.\n", path, db.PageSize())
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("rodent> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if err := execute(db, line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

func execute(db *rodentstore.DB, line string) error {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "help":
		fmt.Println(`commands:
  create <table> (<field>:<type>, ...) layout <expr>
  load <table> <file.csv>              bulk-load CSV (header optional)
  insert <table> v1,v2,...             insert one row
  scan <table> [fields a,b] [where <pred>] [order <keys>] [limit n]
  count <table> [where <pred>]         row count via the aggregate path
  summary <table> <agg>[,<agg>...] [by <cols>] [where <pred>]
                                       e.g. summary T sum(qty*price),avg(lat) by id
  cost <table> [fields a,b] [where <pred>]   estimate without running
  layout <table>                       show layout
  layout <table> <expr> [lazy]         alter layout (eager by default)
  advise <table> fields a,b [where <pred>]   run the design optimizer
  orders <table>                       efficient orders (order_list)
  check                                integrity walk (header, blocks, wal)
  schema <table> | tables | stats | reorg <table> | quit`)
		return nil
	case "tables":
		for _, t := range db.Tables() {
			n, _ := db.RowCount(t)
			l, _ := db.LayoutOf(t)
			fmt.Printf("  %s (%d rows) layout %s\n", t, n, l)
		}
		return nil
	case "create":
		return cmdCreate(db, rest)
	case "load":
		return cmdLoad(db, rest)
	case "insert":
		return cmdInsert(db, rest)
	case "scan":
		return cmdScan(db, rest)
	case "count":
		return cmdCount(db, rest)
	case "summary":
		return cmdSummary(db, rest)
	case "cost":
		table, q, err := parseQuery(rest)
		if err != nil {
			return err
		}
		est, err := db.ScanCost(table, q)
		if err != nil {
			return err
		}
		fmt.Printf("estimated: %.2f ms (%d pages, %d seeks, ~%d rows)\n", est.Ms, est.Pages, est.Seeks, est.Rows)
		return nil
	case "layout":
		parts := strings.Fields(rest)
		if len(parts) == 1 {
			l, err := db.LayoutOf(parts[0])
			if err != nil {
				return err
			}
			fmt.Println(l)
			return nil
		}
		if len(parts) >= 2 {
			table := parts[0]
			lazy := parts[len(parts)-1] == "lazy"
			expr := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(rest, table), "lazy"))
			return db.AlterLayout(table, expr, !lazy)
		}
		return fmt.Errorf("usage: layout <table> [<expr> [lazy]]")
	case "advise":
		return cmdAdvise(db, rest)
	case "orders":
		orders, err := db.OrderList(rest)
		if err != nil {
			return err
		}
		if len(orders) == 0 {
			fmt.Println("(no efficient orders)")
		}
		for _, o := range orders {
			fmt.Println(" ", o)
		}
		return nil
	case "schema":
		fields, err := db.SchemaOf(rest)
		if err != nil {
			return err
		}
		for _, f := range fields {
			fmt.Printf("  %s: %s\n", f.Name, f.Type)
		}
		return nil
	case "stats":
		s := db.IOStats()
		fmt.Printf("page reads %d, writes %d, seeks %d\n", s.PageReads, s.PageWrites, s.Seeks)
		return nil
	case "reorg":
		return db.Reorganize(rest)
	case "check":
		rep, err := db.CheckIntegrity()
		if rep != nil {
			fmt.Printf("checked %d tables, %d segments, %d blocks\n", rep.Tables, rep.Segments, rep.Blocks)
			for _, issue := range rep.Issues {
				fmt.Println("  CORRUPT:", issue.String())
			}
			if rep.OK() && err == nil {
				fmt.Println("ok")
			}
		}
		return err
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func cmdCreate(db *rodentstore.DB, rest string) error {
	// The layout expression itself contains parentheses, so locate the
	// schema's closing paren within the text before the layout keyword.
	layoutIdx := strings.LastIndex(rest, "layout ")
	open := strings.Index(rest, "(")
	closeIdx := -1
	if layoutIdx > 0 {
		closeIdx = strings.LastIndex(rest[:layoutIdx], ")")
	}
	if open < 0 || closeIdx < open {
		return fmt.Errorf("usage: create <table> (f:type, ...) layout <expr>")
	}
	name := strings.TrimSpace(rest[:open])
	var fields []rodentstore.Field
	for _, part := range strings.Split(rest[open+1:closeIdx], ",") {
		fname, ftype, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return fmt.Errorf("bad field %q (want name:type)", part)
		}
		var kind rodentstore.Kind
		switch strings.TrimSpace(ftype) {
		case "int":
			kind = rodentstore.Int
		case "float":
			kind = rodentstore.Float
		case "string":
			kind = rodentstore.String
		case "bool":
			kind = rodentstore.Bool
		case "bytes":
			kind = rodentstore.Bytes
		default:
			return fmt.Errorf("unknown type %q", ftype)
		}
		fields = append(fields, rodentstore.Field{Name: strings.TrimSpace(fname), Type: kind})
	}
	layout := strings.TrimSpace(rest[layoutIdx+len("layout "):])
	if err := db.CreateTable(name, fields, layout); err != nil {
		return err
	}
	fmt.Printf("created %s with layout %s\n", name, layout)
	return nil
}

func cmdLoad(db *rodentstore.DB, rest string) error {
	table, file, ok := strings.Cut(rest, " ")
	if !ok {
		return fmt.Errorf("usage: load <table> <file.csv>")
	}
	fields, err := db.SchemaOf(table)
	if err != nil {
		return err
	}
	f, err := os.Open(strings.TrimSpace(file))
	if err != nil {
		return err
	}
	defer f.Close()
	r := csv.NewReader(f)
	var rows []rodentstore.Row
	first := true
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if first {
			first = false
			// Skip a header row if it matches field names.
			if len(rec) > 0 && rec[0] == fields[0].Name {
				continue
			}
		}
		row, err := parseRow(fields, rec)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	if err := db.Load(table, rows); err != nil {
		return err
	}
	fmt.Printf("loaded %d rows into %s\n", len(rows), table)
	return nil
}

func cmdInsert(db *rodentstore.DB, rest string) error {
	table, csvVals, ok := strings.Cut(rest, " ")
	if !ok {
		return fmt.Errorf("usage: insert <table> v1,v2,...")
	}
	fields, err := db.SchemaOf(table)
	if err != nil {
		return err
	}
	row, err := parseRow(fields, strings.Split(csvVals, ","))
	if err != nil {
		return err
	}
	return db.Insert(table, []rodentstore.Row{row})
}

func parseRow(fields []rodentstore.Field, rec []string) (rodentstore.Row, error) {
	if len(rec) != len(fields) {
		return nil, fmt.Errorf("row has %d values, schema has %d fields", len(rec), len(fields))
	}
	row := make(rodentstore.Row, len(rec))
	for i, s := range rec {
		s = strings.TrimSpace(s)
		switch fields[i].Type {
		case rodentstore.Int:
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, err
			}
			row[i] = rodentstore.IntValue(v)
		case rodentstore.Float:
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, err
			}
			row[i] = rodentstore.FloatValue(v)
		case rodentstore.Bool:
			v, err := strconv.ParseBool(s)
			if err != nil {
				return nil, err
			}
			row[i] = rodentstore.BoolValue(v)
		case rodentstore.Bytes:
			row[i] = rodentstore.BytesValue([]byte(s))
		default:
			row[i] = rodentstore.StringValue(s)
		}
	}
	return row, nil
}

// parseQuery parses "table [fields a,b] [where ...] [order ...] [limit n]".
func parseQuery(rest string) (string, rodentstore.Query, error) {
	var q rodentstore.Query
	table, rest, _ := strings.Cut(rest, " ")
	if table == "" {
		return "", q, fmt.Errorf("missing table name")
	}
	for rest != "" {
		rest = strings.TrimSpace(rest)
		var kw string
		kw, rest, _ = strings.Cut(rest, " ")
		next := func() string {
			// take text up to the next top-level keyword
			low := strings.ToLower(rest)
			end := len(rest)
			for _, k := range []string{" fields ", " where ", " order ", " limit "} {
				if i := strings.Index(low, k); i >= 0 && i < end {
					end = i
				}
			}
			out := strings.TrimSpace(rest[:end])
			rest = strings.TrimSpace(rest[end:])
			return out
		}
		switch strings.ToLower(kw) {
		case "fields":
			for _, f := range strings.Split(next(), ",") {
				q.Fields = append(q.Fields, strings.TrimSpace(f))
			}
		case "where":
			q.Where = next()
		case "order":
			q.OrderBy = next()
		default:
			return "", q, fmt.Errorf("unexpected %q", kw)
		}
	}
	return table, q, nil
}

func cmdScan(db *rodentstore.DB, rest string) error {
	// Extract limit before the shared parser (scan-only feature).
	limit := -1
	if i := strings.LastIndex(strings.ToLower(rest), " limit "); i >= 0 {
		n, err := strconv.Atoi(strings.TrimSpace(rest[i+7:]))
		if err != nil {
			return fmt.Errorf("bad limit: %w", err)
		}
		limit = n
		rest = rest[:i]
	}
	table, q, err := parseQuery(rest)
	if err != nil {
		return err
	}
	cur, err := db.Scan(table, q)
	if err != nil {
		return err
	}
	defer cur.Close()
	fields := cur.Schema()
	names := make([]string, len(fields))
	for i, f := range fields {
		names[i] = f.Name
	}
	fmt.Println(strings.Join(names, "\t"))
	count := 0
	for limit < 0 || count < limit {
		row, ok, err := cur.Next()
		if err != nil {
			return err
		}
		if !ok {
			fmt.Printf("(%d rows)\n", count)
			return nil
		}
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
		count++
	}
	// Past the limit we only need the row count: drain batch-at-a-time
	// instead of boxing every remaining row through Next.
	for {
		b, ok, err := cur.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		count += b.Len()
	}
	fmt.Printf("(%d rows)\n", count)
	return nil
}

// cmdCount runs `count <table> [where <pred>]` through the aggregate path:
// no row is materialized, and a bare count reads only block metadata.
func cmdCount(db *rodentstore.DB, rest string) error {
	table, q, err := parseQuery(rest)
	if err != nil {
		return err
	}
	if len(q.Fields) > 0 || q.OrderBy != "" {
		return fmt.Errorf("usage: count <table> [where <pred>]")
	}
	q.Aggregate = &rodentstore.AggregateSpec{Aggs: []string{"count"}}
	cur, err := db.Scan(table, q)
	if err != nil {
		return err
	}
	defer cur.Close()
	rows, err := cur.All()
	if err != nil {
		return err
	}
	fmt.Printf("%d\n", rows[0][0].Int())
	return nil
}

// cmdSummary runs `summary <table> <agg>[,<agg>...] [by <cols>] [where
// <pred>]`, e.g. `summary trips sum(qty*price),avg(lat) by id where lat > 0`.
func cmdSummary(db *rodentstore.DB, rest string) error {
	table, rest, _ := strings.Cut(strings.TrimSpace(rest), " ")
	rest = strings.TrimSpace(rest)
	if table == "" || rest == "" {
		return fmt.Errorf("usage: summary <table> <agg>[,<agg>...] [by <cols>] [where <pred>]")
	}
	var q rodentstore.Query
	low := strings.ToLower(rest)
	if i := strings.Index(low, " where "); i >= 0 {
		q.Where = strings.TrimSpace(rest[i+7:])
		rest = strings.TrimSpace(rest[:i])
		low = strings.ToLower(rest)
	}
	spec := &rodentstore.AggregateSpec{}
	if i := strings.Index(low, " by "); i >= 0 {
		for _, c := range strings.Split(rest[i+4:], ",") {
			spec.GroupBy = append(spec.GroupBy, strings.TrimSpace(c))
		}
		rest = strings.TrimSpace(rest[:i])
	}
	for _, a := range strings.Split(rest, ",") {
		spec.Aggs = append(spec.Aggs, strings.TrimSpace(a))
	}
	q.Aggregate = spec
	cur, err := db.Scan(table, q)
	if err != nil {
		return err
	}
	defer cur.Close()
	fields := cur.Schema()
	names := make([]string, len(fields))
	for i, f := range fields {
		names[i] = f.Name
	}
	fmt.Println(strings.Join(names, "\t"))
	rows, err := cur.All()
	if err != nil {
		return err
	}
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	fmt.Printf("(%d groups)\n", len(rows))
	return nil
}

func cmdAdvise(db *rodentstore.DB, rest string) error {
	table, q, err := parseQuery(rest)
	if err != nil {
		return err
	}
	advice, err := db.Advise(table, []rodentstore.WorkloadQuery{{Fields: q.Fields, Where: q.Where, Weight: 1}})
	if err != nil {
		return err
	}
	fmt.Printf("recommended: %s (est %.1f ms)\n", advice.Layout, advice.EstimatedMs)
	show := advice.Alternatives
	if len(show) > 5 {
		show = show[:5]
	}
	fmt.Println("top candidates:")
	for _, c := range show {
		fmt.Printf("  %8.1f ms  %s\n", c.EstimatedMs, c.Layout)
	}
	fmt.Println("apply with: layout", table, advice.Layout)
	return nil
}
