// Package rodentstore is an adaptive, declarative storage system — a Go
// reproduction of "The Case for RodentStore, an Adaptive, Declarative
// Storage System" (Cudré-Mauroux, Wu, Madden; CIDR 2009).
//
// RodentStore separates a table's logical schema from its physical layout.
// The layout is declared with a storage algebra expression that transforms
// the canonical row-major representation: project/colgroup/cols decompose
// vertically, orderby/groupby reorder, grid repartitions onto an
// n-dimensional lattice whose cells are stored along a space-filling curve
// (zorder, hilbert), and delta/rle/dict/bitpack compress individual columns.
// The same data can be re-laid-out at any time with AlterLayout.
//
//	db, _ := rodentstore.Create("traces.rdnt", nil)
//	db.CreateTable("Traces", []rodentstore.Field{
//	    {Name: "t", Type: rodentstore.Int},
//	    {Name: "lat", Type: rodentstore.Float},
//	    {Name: "lon", Type: rodentstore.Float},
//	    {Name: "id", Type: rodentstore.String},
//	}, "delta[lat,lon](zorder(grid[lat,lon; 64,64](project[lat,lon](Traces))))")
//	db.Load("Traces", rows)
//	cur, _ := db.Scan("Traces", rodentstore.Query{
//	    Where: "lat >= 42.35 and lat < 42.37 and lon >= -71.1 and lon < -71.08",
//	})
//
// The access-method API mirrors the paper's §4.1: Scan, GetElement, Next
// (on Cursor), ScanCost, GetElementCost and OrderList; a storage design
// optimizer (Advise) recommends a layout for a workload, per §5.
package rodentstore

import (
	"fmt"

	"rodentstore/internal/buffer"
	"rodentstore/internal/catalog"
	"rodentstore/internal/cost"
	"rodentstore/internal/pager"
	"rodentstore/internal/table"
	"rodentstore/internal/txn"
	"rodentstore/internal/value"
	"rodentstore/internal/vec"
	"rodentstore/internal/vfs"
	"rodentstore/internal/wal"
)

// Kind is a column type.
type Kind = value.Kind

// Column types.
const (
	// Int is a 64-bit signed integer column.
	Int = value.Int
	// Float is a 64-bit IEEE-754 column.
	Float = value.Float
	// String is a variable-length UTF-8 column.
	String = value.Str
	// Bytes is a variable-length binary column.
	Bytes = value.Bytes
	// Bool is a boolean column.
	Bool = value.Bool
)

// Field is one column of a table schema.
type Field = value.Field

// Value is one typed cell value.
type Value = value.Value

// Row is one record.
type Row = value.Row

// Batch is one block's worth of scan results as typed column vectors with
// null bitmaps — the vectorized counterpart of iterating rows. Obtained
// from Cursor.NextBatch; read columns through Batch.Cols (Int64s/Float64s
// slices, byte arenas) or box single rows with Batch.Row. A batch is valid
// only until the next cursor call.
type Batch = vec.Batch

// Typed value constructors, re-exported for building rows.
var (
	// IntValue makes an Int value.
	IntValue = value.NewInt
	// FloatValue makes a Float value.
	FloatValue = value.NewFloat
	// StringValue makes a String value.
	StringValue = value.NewString
	// BytesValue makes a Bytes value.
	BytesValue = value.NewBytes
	// BoolValue makes a Bool value.
	BoolValue = value.NewBool
	// Null makes the null value.
	Null = value.NullValue
)

// Options configures Create.
type Options struct {
	// PageSize is the disk page size in bytes (default 1024, the page size
	// of the paper's case study).
	PageSize int
	// CachePages enables a buffer pool with this many frames. 0 (default)
	// bypasses caching so page-read statistics equal cold physical I/O,
	// which is what the paper's experiments measure.
	CachePages int
	// DurableInserts routes Insert's publish phase through the write-ahead
	// log: tail pages are logged as images and group-committed (one fsync
	// absorbs concurrent inserters) before being applied. Off by default —
	// the paper's experiments measure non-durable bulk ingest.
	DurableInserts bool
	// AutoMergeTails enables the background tail-merge worker: when a table
	// accumulates this many unorganized tail batches they are folded into
	// the main rendering off the insert path (paper §5's "reorganize only
	// new data", amortized in the background). 0 (default) disables it;
	// call Reorganize explicitly (the synchronous fallback).
	AutoMergeTails int
	// FS is the filesystem the page file and write-ahead log live on. Nil
	// (default) uses the operating system. Fault-injection tests substitute
	// vfs.NewFault to exercise crash, torn-write and corruption paths.
	FS vfs.FS
}

// DB is a RodentStore database: one page file, its write-ahead log,
// catalog, and storage engine.
type DB struct {
	file *pager.File
	log  *wal.Log
	mgr  *txn.Manager
	cat  *catalog.Catalog
	eng  *table.Engine
	pool *buffer.Pool
}

// Create creates a new database file (truncating any existing one).
func Create(path string, opts *Options) (*DB, error) {
	o := Options{PageSize: pager.DefaultPageSize}
	if opts != nil {
		if opts.PageSize != 0 {
			o.PageSize = opts.PageSize
		}
		o.CachePages = opts.CachePages
		o.DurableInserts = opts.DurableInserts
		o.AutoMergeTails = opts.AutoMergeTails
		o.FS = opts.FS
	}
	if o.FS == nil {
		o.FS = vfs.OS
	}
	file, err := pager.CreateAt(o.FS, path, o.PageSize)
	if err != nil {
		return nil, err
	}
	return open(file, path, o)
}

// Open opens an existing database, replaying the write-ahead log. Runtime
// options (durable inserts, background merging, caching) default to off;
// use OpenWithOptions to re-enable them — they are per-session knobs, not
// properties stored in the file.
func Open(path string) (*DB, error) {
	return OpenWithOptions(path, nil)
}

// OpenWithOptions opens an existing database with runtime options. The
// page size always comes from the file; Options.PageSize is ignored. A
// database created with DurableInserts must be reopened with it set, or
// subsequent inserts are acknowledged without WAL logging.
func OpenWithOptions(path string, opts *Options) (*DB, error) {
	o := Options{}
	if opts != nil {
		o = *opts
	}
	if o.FS == nil {
		o.FS = vfs.OS
	}
	file, err := pager.OpenAt(o.FS, path)
	if err != nil {
		return nil, err
	}
	return open(file, path, o)
}

func open(file *pager.File, path string, o Options) (*DB, error) {
	log, err := wal.OpenAt(o.FS, path+".wal")
	if err != nil {
		file.Close()
		return nil, err
	}
	mgr := txn.NewManager(file, log)
	// The catalog loads before recovery (its extent is flushed in place,
	// never WAL-logged, so replay cannot change it) and the engine is
	// created before Recover so its catalog hooks — checkpoint flush and
	// tail-append delta replay — are in place for the replay itself.
	cat, err := catalog.Load(file)
	if err != nil {
		log.Close()
		file.Close()
		return nil, err
	}
	eng := table.NewEngine(file, cat, mgr)
	if _, err := mgr.Recover(); err != nil {
		log.Close()
		file.Close()
		return nil, fmt.Errorf("rodentstore: recovery: %w", err)
	}
	db := &DB{file: file, log: log, mgr: mgr, cat: cat, eng: eng}
	db.eng.SyncInserts = o.DurableInserts
	if o.AutoMergeTails > 0 {
		db.eng.EnableAutoMerge(table.MergePolicy{MaxTails: o.AutoMergeTails})
	}
	if o.CachePages > 0 {
		pool, err := buffer.NewPool(file, o.CachePages)
		if err != nil {
			log.Close()
			file.Close()
			return nil, err
		}
		db.pool = pool
		db.eng.Source = pool
	}
	return db, nil
}

// Close flushes and closes the database: pending background merges drain,
// applied pages are made durable and the write-ahead log is truncated (a
// final checkpoint), then the files close.
func (db *DB) Close() error {
	db.eng.DisableAutoMerge()
	if db.pool != nil {
		if err := db.pool.FlushAll(); err != nil {
			return err
		}
	}
	if err := db.mgr.Checkpoint(); err != nil {
		return err
	}
	if err := db.log.Close(); err != nil {
		db.file.Close()
		return err
	}
	return db.file.Close()
}

// Checkpoint makes every applied page durable and truncates the write-ahead
// log. Commits defer this work to the manager's size/interval policy; call
// it directly to force the log empty (e.g. before copying the database
// file).
func (db *DB) Checkpoint() error { return db.mgr.Checkpoint() }

// IntegrityReport is the outcome of CheckIntegrity: coverage counters and
// every issue found, typed and extent-addressed.
type IntegrityReport = table.IntegrityReport

// IntegrityIssue is one problem found by CheckIntegrity.
type IntegrityIssue = table.IntegrityIssue

// CheckIntegrity walks the whole store read-only — the page-file header,
// every block of every table (all columns decoded), and the write-ahead
// log's record framing — and reports everything that cannot be read. Damage
// never stops the walk; a non-nil error alongside the (partial) report means
// the walk itself could not proceed (e.g. the catalog is unreadable).
func (db *DB) CheckIntegrity() (*IntegrityReport, error) {
	rep, err := db.eng.CheckIntegrity()
	if err != nil {
		return rep, err
	}
	if herr := db.file.CheckHeader(); herr != nil {
		rep.Issues = append(rep.Issues, IntegrityIssue{Part: "pager header", Segment: -1, Block: -1, Err: herr})
	}
	if _, werr := db.log.Verify(); werr != nil {
		rep.Issues = append(rep.Issues, IntegrityIssue{Part: "wal", Segment: -1, Block: -1, Err: werr})
	}
	return rep, nil
}

// EnableAutoMerge starts (or re-configures) background tail merging: once a
// table accumulates maxTails unorganized tail batches they are folded into
// the main layout off the insert path.
func (db *DB) EnableAutoMerge(maxTails int) {
	db.eng.EnableAutoMerge(table.MergePolicy{MaxTails: maxTails})
}

// DisableAutoMerge stops background tail merging, draining queued merges.
func (db *DB) DisableAutoMerge() { db.eng.DisableAutoMerge() }

// WaitMerges blocks until every queued background merge has completed, then
// reports the most recent background merge error, if any.
func (db *DB) WaitMerges() error {
	db.eng.WaitMerges()
	return db.eng.MergeErr()
}

// PageSize returns the database's page size in bytes.
func (db *DB) PageSize() int { return db.file.PageSize() }

// IOStats is a snapshot of physical I/O counters.
type IOStats struct {
	PageReads  uint64
	PageWrites uint64
	Seeks      uint64
}

// IOStats returns the current counters.
func (db *DB) IOStats() IOStats {
	s := db.file.Stats()
	return IOStats{PageReads: s.PageReads, PageWrites: s.PageWrites, Seeks: s.Seeks}
}

// ResetIOStats zeroes the counters (each measured query starts cold).
func (db *DB) ResetIOStats() { db.file.ResetStats() }

// InvalidateCache drops the buffer pool (no-op without one) so the next
// reads hit disk.
func (db *DB) InvalidateCache() error {
	if db.pool == nil {
		return nil
	}
	return db.pool.Invalidate()
}

// SetFoldStrategy selects the fold rendering algorithm of the paper's §4.2:
// "hash" (default) or "nestedloop" (the paper's Algorithm 1).
func (db *DB) SetFoldStrategy(strategy string) error {
	switch strategy {
	case "hash":
		db.eng.Fold = table.FoldHash
	case "nestedloop":
		db.eng.Fold = table.FoldNestedLoop
	default:
		return fmt.Errorf("rodentstore: unknown fold strategy %q", strategy)
	}
	return nil
}

// CostModel returns the default device cost model used by ScanCost and
// GetElementCost.
func CostModel() cost.Model { return cost.DefaultModel() }
