// Package rodentstore is an adaptive, declarative storage system — a Go
// reproduction of "The Case for RodentStore, an Adaptive, Declarative
// Storage System" (Cudré-Mauroux, Wu, Madden; CIDR 2009).
//
// RodentStore separates a table's logical schema from its physical layout.
// The layout is declared with a storage algebra expression that transforms
// the canonical row-major representation: project/colgroup/cols decompose
// vertically, orderby/groupby reorder, grid repartitions onto an
// n-dimensional lattice whose cells are stored along a space-filling curve
// (zorder, hilbert), and delta/rle/dict/bitpack compress individual columns.
// The same data can be re-laid-out at any time with AlterLayout.
//
//	db, _ := rodentstore.Create("traces.rdnt", nil)
//	db.CreateTable("Traces", []rodentstore.Field{
//	    {Name: "t", Type: rodentstore.Int},
//	    {Name: "lat", Type: rodentstore.Float},
//	    {Name: "lon", Type: rodentstore.Float},
//	    {Name: "id", Type: rodentstore.String},
//	}, "delta[lat,lon](zorder(grid[lat,lon; 64,64](project[lat,lon](Traces))))")
//	db.Load("Traces", rows)
//	cur, _ := db.Scan("Traces", rodentstore.Query{
//	    Where: "lat >= 42.35 and lat < 42.37 and lon >= -71.1 and lon < -71.08",
//	})
//
// The access-method API mirrors the paper's §4.1: Scan, GetElement, Next
// (on Cursor), ScanCost, GetElementCost and OrderList; a storage design
// optimizer (Advise) recommends a layout for a workload, per §5.
package rodentstore

import (
	"fmt"

	"rodentstore/internal/buffer"
	"rodentstore/internal/catalog"
	"rodentstore/internal/cost"
	"rodentstore/internal/pager"
	"rodentstore/internal/table"
	"rodentstore/internal/txn"
	"rodentstore/internal/value"
	"rodentstore/internal/wal"
)

// Kind is a column type.
type Kind = value.Kind

// Column types.
const (
	// Int is a 64-bit signed integer column.
	Int = value.Int
	// Float is a 64-bit IEEE-754 column.
	Float = value.Float
	// String is a variable-length UTF-8 column.
	String = value.Str
	// Bytes is a variable-length binary column.
	Bytes = value.Bytes
	// Bool is a boolean column.
	Bool = value.Bool
)

// Field is one column of a table schema.
type Field = value.Field

// Value is one typed cell value.
type Value = value.Value

// Row is one record.
type Row = value.Row

// Typed value constructors, re-exported for building rows.
var (
	// IntValue makes an Int value.
	IntValue = value.NewInt
	// FloatValue makes a Float value.
	FloatValue = value.NewFloat
	// StringValue makes a String value.
	StringValue = value.NewString
	// BytesValue makes a Bytes value.
	BytesValue = value.NewBytes
	// BoolValue makes a Bool value.
	BoolValue = value.NewBool
	// Null makes the null value.
	Null = value.NullValue
)

// Options configures Create.
type Options struct {
	// PageSize is the disk page size in bytes (default 1024, the page size
	// of the paper's case study).
	PageSize int
	// CachePages enables a buffer pool with this many frames. 0 (default)
	// bypasses caching so page-read statistics equal cold physical I/O,
	// which is what the paper's experiments measure.
	CachePages int
}

// DB is a RodentStore database: one page file, its write-ahead log,
// catalog, and storage engine.
type DB struct {
	file *pager.File
	log  *wal.Log
	mgr  *txn.Manager
	cat  *catalog.Catalog
	eng  *table.Engine
	pool *buffer.Pool
}

// Create creates a new database file (truncating any existing one).
func Create(path string, opts *Options) (*DB, error) {
	o := Options{PageSize: pager.DefaultPageSize}
	if opts != nil {
		if opts.PageSize != 0 {
			o.PageSize = opts.PageSize
		}
		o.CachePages = opts.CachePages
	}
	file, err := pager.Create(path, o.PageSize)
	if err != nil {
		return nil, err
	}
	return open(file, path, o.CachePages)
}

// Open opens an existing database, replaying the write-ahead log.
func Open(path string) (*DB, error) {
	file, err := pager.Open(path)
	if err != nil {
		return nil, err
	}
	return open(file, path, 0)
}

func open(file *pager.File, path string, cachePages int) (*DB, error) {
	log, err := wal.Open(path + ".wal")
	if err != nil {
		file.Close()
		return nil, err
	}
	mgr := txn.NewManager(file, log)
	if _, err := mgr.Recover(); err != nil {
		log.Close()
		file.Close()
		return nil, fmt.Errorf("rodentstore: recovery: %w", err)
	}
	cat, err := catalog.Load(file)
	if err != nil {
		log.Close()
		file.Close()
		return nil, err
	}
	db := &DB{file: file, log: log, mgr: mgr, cat: cat, eng: table.NewEngine(file, cat, mgr)}
	if cachePages > 0 {
		pool, err := buffer.NewPool(file, cachePages)
		if err != nil {
			log.Close()
			file.Close()
			return nil, err
		}
		db.pool = pool
		db.eng.Source = pool
	}
	return db, nil
}

// Close flushes and closes the database.
func (db *DB) Close() error {
	if db.pool != nil {
		if err := db.pool.FlushAll(); err != nil {
			return err
		}
	}
	if err := db.log.Close(); err != nil {
		db.file.Close()
		return err
	}
	return db.file.Close()
}

// PageSize returns the database's page size in bytes.
func (db *DB) PageSize() int { return db.file.PageSize() }

// IOStats is a snapshot of physical I/O counters.
type IOStats struct {
	PageReads  uint64
	PageWrites uint64
	Seeks      uint64
}

// IOStats returns the current counters.
func (db *DB) IOStats() IOStats {
	s := db.file.Stats()
	return IOStats{PageReads: s.PageReads, PageWrites: s.PageWrites, Seeks: s.Seeks}
}

// ResetIOStats zeroes the counters (each measured query starts cold).
func (db *DB) ResetIOStats() { db.file.ResetStats() }

// InvalidateCache drops the buffer pool (no-op without one) so the next
// reads hit disk.
func (db *DB) InvalidateCache() error {
	if db.pool == nil {
		return nil
	}
	return db.pool.Invalidate()
}

// SetFoldStrategy selects the fold rendering algorithm of the paper's §4.2:
// "hash" (default) or "nestedloop" (the paper's Algorithm 1).
func (db *DB) SetFoldStrategy(strategy string) error {
	switch strategy {
	case "hash":
		db.eng.Fold = table.FoldHash
	case "nestedloop":
		db.eng.Fold = table.FoldNestedLoop
	default:
		return fmt.Errorf("rodentstore: unknown fold strategy %q", strategy)
	}
	return nil
}

// CostModel returns the default device cost model used by ScanCost and
// GetElementCost.
func CostModel() cost.Model { return cost.DefaultModel() }
